// Package taintsink consumes the clock helpers from simulation code:
// the taint family flags cross-function nondeterminism flowing into
// state that outlives the call and into emitted metrics, and accepts
// the discharged and waived forms.
package taintsink

import (
	"fixture/clock"
	"fixture/obs"
)

// Sim is persistent simulation state.
type Sim struct {
	start int64
	seed  int64
	label string
	names []string
	depth *obs.Gauge
}

var lastRun int64

// Begin stores a laundered wall-clock reading into sim state.
func (s *Sim) Begin() {
	s.start = clock.Stamp() // want "derived from time.Now .via clock.Stamp."
}

// Tick launders through two hops; the chain names both.
func (s *Sim) Tick() {
	s.start = clock.Elapsed(s.start) // want "derived from time.Now .via clock.Elapsed -> clock.Stamp."
}

// Reseed parks the laundered RNG value in a local first; the flow into
// the field is still flagged.
func (s *Sim) Reseed() {
	v := clock.Jitter()
	s.seed = v // want "derived from math/rand global RNG .via clock.Jitter."
}

// Stamp taints a package variable: assigning a global is a store that
// outlives the call even though the target is a bare identifier.
func Stamp() {
	lastRun = clock.Stamp() // want "derived from time.Now .via clock.Stamp."
}

// Label stores a map-order witness obtained across the call boundary.
func (s *Sim) Label(m map[string]int) {
	s.label = clock.FirstKey(m) // want "derived from map iteration order .via clock.FirstKey."
}

// Names is clean: the helper sorts before returning.
func (s *Sim) Names(m map[string]int) {
	s.names = clock.SortedKeys(m)
}

// Pick is clean: the waived helper's summary was discharged by its
// audit.
func (s *Sim) Pick(m map[string]int) {
	s.label = clock.AnyKey(m)
}

// Observe feeds a laundered reading into an emitted metric.
func (s *Sim) Observe() {
	if s.depth != nil {
		s.depth.Set(clock.Stamp()) // want "emitted metric derives from time.Now .via clock.Stamp."
	}
}

// Scratch keeps the tainted value local and returns a difference; reads
// that never reach persistent state or metrics are legal here (the
// helper's own package answers for the time.Now call).
func (s *Sim) Scratch() int64 {
	t := clock.Stamp()
	return t - s.start
}
