// Package shard seeds sharded-determinism violations — coordinator
// writes from shard methods — next to the waived and genuinely
// shard-local forms the rule must accept.
package shard

// sim is the coordinator: state shared by every shard, writable only in
// the serial prologue/epilogue between phase barriers.
type sim struct {
	cycle   int64
	backlog int64
	shards  []*worker
	totals  []int64
}

// worker is a shard: it holds a back-pointer to the coordinator, which
// makes every method below subject to the sharded-determinism rule.
type worker struct {
	sim      *sim
	id       int
	inFlight int64
}

// stepLocal mutates only shard-owned state and reads coordinator state;
// both are always legal between barriers.
func (w *worker) stepLocal() int64 {
	w.inFlight++
	return w.sim.cycle + w.inFlight
}

// stepDirect writes the coordinator directly.
func (w *worker) stepDirect() {
	w.sim.cycle = w.sim.cycle + 1 // want "shard method writes coordinator state"
	w.sim.backlog++               // want "shard method writes coordinator state"
}

// stepAliased writes the coordinator through a local alias; the rule
// tracks the aliasing so the indirection does not hide the race.
func (w *worker) stepAliased() {
	s := w.sim
	t := s.totals
	s.backlog += w.inFlight // want "shard method writes coordinator state"
	t[w.id]++               // want "shard method writes coordinator state"
}

// finishEpilogue runs with every worker parked at the final barrier; the
// waiver records that audit.
// damqvet:sharded the coordinator calls this serially after the last phase
func (w *worker) finishEpilogue() {
	w.sim.backlog += w.inFlight
}

// spawn bypasses internal/parallel; the plain goroutine rule still
// applies to shard code.
func (w *worker) spawn(ch chan int) {
	go func() { ch <- w.id }() // want "bare go statement"
}

// bump stores through its pointer argument: a mutation summary the
// phase rule lifts to every caller.
func bump(c *int64) { *c = *c + 1 }

// relay forwards to bump; the write is two hops from the shard method.
func relay(c *int64) { bump(c) }

// addTotal stores through its slice argument.
func addTotal(ts []int64, id int) { ts[id]++ }

// grow is a coordinator method that mutates the coordinator.
func (s *sim) grow() { s.backlog++ }

// stepViaCallee hands coordinator state to a callee that stores through
// it; the finding names the chain.
func (w *worker) stepViaCallee() {
	bump(&w.sim.backlog)         // want "passes coordinator state .via the sim back-pointer. to a callee that stores through it .bump."
	addTotal(w.sim.totals, w.id) // want "passes coordinator state .via the sim back-pointer. to a callee that stores through it .addTotal."
}

// stepDeep reaches the write through two hops.
func (w *worker) stepDeep() {
	relay(&w.sim.backlog) // want "callee that stores through it .relay -> bump."
}

// stepViaMethod calls a mutating method on the coordinator.
func (w *worker) stepViaMethod() {
	w.sim.grow() // want "calls a mutating method on coordinator state reached through the sim back-pointer .sim.grow."
}

// stepViaMethodValue hides the mutating method behind a method value;
// the binding's receiver is tracked through the local.
func (w *worker) stepViaMethodValue() {
	f := w.sim.grow
	f() // want "calls a mutating method on coordinator state reached through the sim back-pointer .sim.grow."
}

// stepLocalCallee is clean: the mutated target is shard-owned.
func (w *worker) stepLocalCallee() {
	bump(&w.inFlight)
}

// stepReadCallee is clean: the callee only reads the coordinator state
// it is given.
func (w *worker) stepReadCallee() int64 {
	return readTotal(w.sim.totals, w.id)
}

func readTotal(ts []int64, id int) int64 { return ts[id] }
