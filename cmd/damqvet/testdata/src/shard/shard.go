// Package shard seeds sharded-determinism violations — coordinator
// writes from shard methods — next to the waived and genuinely
// shard-local forms the rule must accept.
package shard

// sim is the coordinator: state shared by every shard, writable only in
// the serial prologue/epilogue between phase barriers.
type sim struct {
	cycle   int64
	backlog int64
	shards  []*worker
	totals  []int64
}

// worker is a shard: it holds a back-pointer to the coordinator, which
// makes every method below subject to the sharded-determinism rule.
type worker struct {
	sim      *sim
	id       int
	inFlight int64
}

// stepLocal mutates only shard-owned state and reads coordinator state;
// both are always legal between barriers.
func (w *worker) stepLocal() int64 {
	w.inFlight++
	return w.sim.cycle + w.inFlight
}

// stepDirect writes the coordinator directly.
func (w *worker) stepDirect() {
	w.sim.cycle = w.sim.cycle + 1 // want "shard method writes coordinator state"
	w.sim.backlog++               // want "shard method writes coordinator state"
}

// stepAliased writes the coordinator through a local alias; the rule
// tracks the aliasing so the indirection does not hide the race.
func (w *worker) stepAliased() {
	s := w.sim
	t := s.totals
	s.backlog += w.inFlight // want "shard method writes coordinator state"
	t[w.id]++               // want "shard method writes coordinator state"
}

// finishEpilogue runs with every worker parked at the final barrier; the
// waiver records that audit.
// damqvet:sharded the coordinator calls this serially after the last phase
func (w *worker) finishEpilogue() {
	w.sim.backlog += w.inFlight
}

// spawn bypasses internal/parallel; the plain goroutine rule still
// applies to shard code.
func (w *worker) spawn(ch chan int) {
	go func() { ch <- w.id }() // want "bare go statement"
}
