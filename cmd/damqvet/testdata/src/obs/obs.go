// Package obs mirrors the real repo's internal/obs instrument shapes:
// any pointer type declared in a package named "obs" is recognized as an
// observability sink by the zeroalloc rule, independent of its name.
package obs

// Counter is a minimal instrument; Inc is what hot paths call.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Value reads the count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a minimal level instrument.
type Gauge struct{ v int64 }

// Set overwrites the level.
func (g *Gauge) Set(v int64) { g.v = v }
