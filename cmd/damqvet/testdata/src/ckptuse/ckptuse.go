// Package ckptuse seeds checkpoint-in-hot-path violations: snapshot
// encode/decode is cold by contract, so a hot body calling into a
// checkpoint package is flagged whether it reaches a package function or
// a method on one of the package's types.
package ckptuse

import "fixture/checkpoint"

// Sim is a toy simulator holding an encoder handle.
type Sim struct {
	enc   *checkpoint.Encoder
	cycle int64
}

// Step is hot: both the method call on a checkpoint type and the
// package-level call must be flagged.
// damqvet:hotpath
func (s *Sim) Step() {
	s.cycle++
	s.enc.I64(s.cycle)      // want "checkpoint call in hot path"
	checkpoint.Reset(s.enc) // want "checkpoint call in hot path"
}

// Save is cold (no hotpath annotation): the same calls are fine here.
func (s *Sim) Save() {
	s.enc.I64(s.cycle)
	checkpoint.Reset(s.enc)
}
