package hotchain

import "fmt"

// probe is unannotated: the hotpath obligation arrives through Step, and
// the finding names the chain.
func (r *Ring) probe(v int) {
	s := fmt.Sprintf("probe %d", v) // want "fmt.Sprintf in hot path.*hot path: Ring.Step -> Ring.probe"
	_ = s
	r.deeper(v)
}

// deeper is two hops below the root: still hot-reachable.
func (r *Ring) deeper(v int) {
	r.buf = append(r.buf, byte(v)) // clean: receiver-rooted growth
	var tmp []int
	tmp = append(tmp, v) // want "append to a slice not reachable.*hot path: Ring.Step -> Ring.probe -> Ring.deeper"
	_ = tmp
}

// grow allocates freely: it is only reachable through the
// coldcall-waived line in Step, so the pass never descends into it —
// and because it would have been dirty, the waiver is credited and the
// audit accepts it.
func (r *Ring) grow() {
	next := make([]int, len(r.slots), 2*cap(r.slots)+1)
	copy(next, r.slots)
	var spill []int
	spill = append(spill, len(next))
	_ = spill
	r.slots = next
}
