// Package hotchain seeds transitive zeroalloc violations: the hot root
// is clean line by line, and the allocations hide in callees one and two
// hops down — in a second file of this package and across the package
// boundary in fixture/hotdeep. The findings must carry the call chain.
package hotchain

import "fixture/hotdeep"

// Ring is the hot structure; Step is the only annotated root.
type Ring struct {
	slots []int
	buf   []byte
}

// Step allocates nothing itself; its callees inherit the obligation.
// damqvet:hotpath
func (r *Ring) Step(v int) {
	r.slots = append(r.slots, v)
	r.probe(v)
	hotdeep.Note(v)
	r.grow() // damqvet:coldcall audited: doubles capacity, amortized O(1)
}
