// Package clock seeds cross-function nondeterminism sources for the
// taint family: helpers whose return values launder wall-clock readings,
// the process-global RNG, and map iteration order across function and
// package boundaries.
package clock

import (
	"math/rand" // want "simulation package imports math/rand"
	"sort"
	"time"
)

// Stamp returns a wall-clock reading; callers inherit the taint.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in simulation package"
}

// Elapsed launders the reading through one more hop.
func Elapsed(since int64) int64 {
	return Stamp() - since
}

// Jitter launders the process-global RNG through a return value.
func Jitter() int64 {
	return rand.Int63()
}

// FirstKey observes map iteration order and returns the witness.
func FirstKey(m map[string]int) string {
	for k := range m { // want "range over map"
		return k
	}
	return ""
}

// SortedKeys is clean: collect-then-sort discharges the order taint
// before the slice escapes.
func SortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// AnyKey returns an arbitrary key under an audited waiver: callers
// treat every key as equivalent, so the summary stays clean and the
// waiver earns its suppression credit.
func AnyKey(m map[string]int) string {
	// damqvet:ordered any representative key works here
	for k := range m {
		return k
	}
	return ""
}
