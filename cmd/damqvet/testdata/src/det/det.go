// Package det seeds determinism-rule violations next to the waived and
// provably-safe forms the rule must accept.
package det

import (
	"math/rand" // want "simulation package imports math/rand"
	"sort"
	"time"
)

var _ = rand.Int

// Collect observes map iteration order: the slice it returns differs
// from run to run.
func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map"
		out = append(out, v)
	}
	return out
}

// Sum is order-insensitive: the body only accumulates commutatively.
func Sum(m map[string]int) (int, int) {
	total := 0
	n := 0
	for _, v := range m {
		total += v
		n++
	}
	return total, n
}

// Keys uses the canonical collect-then-sort idiom.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var sink []string

// Waived carries an audited waiver.
func Waived(m map[string]int) {
	// damqvet:ordered the caller re-sorts sink before rendering
	for k := range m {
		sink = append(sink, k)
	}
}

// Last is order-sensitive even though it looks like an accumulator: a
// plain assignment keeps whichever key the runtime visits last.
func Last(m map[string]int) string {
	var last string
	for k := range m { // want "range over map"
		last = k
	}
	return last
}

// Timing reads the wall clock twice.
func Timing() time.Duration {
	start := time.Now()      // want "time.Now in simulation package"
	return time.Since(start) // want "time.Since in simulation package"
}

// Spawn launches an ad-hoc goroutine.
func Spawn(ch chan int) {
	go send(ch, 1) // want "bare go statement"
}

func send(ch chan int, v int) { ch <- v }
