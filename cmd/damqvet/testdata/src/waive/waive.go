// Package waive seeds waiver-audit findings: unknown marker spellings,
// markers that attach to nothing, and waivers that suppress nothing —
// next to the justified waivers elsewhere in the fixtures that the audit
// must accept.
package waive

import "sort"

// damqvet:hotpth typo'd marker kind // want "unknown annotation damqvet:hotpth"

// damqvet:hotpath nothing hot starts on the next line // want "damqvet:hotpath attaches to nothing"
type orphan struct{ n int64 }

// Stale carries an ordered waiver on a loop the rule already accepts
// through the collect-then-sort idiom, so the waiver suppresses nothing.
func Stale(m map[string]int) []string {
	var ks []string
	// damqvet:ordered the sort below already discharges this // want "stale damqvet:ordered waiver"
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sim and worker reproduce the shard shape so the sharded waiver below
// has something to (fail to) govern.
type sim struct{ cycle int64 }

type worker struct {
	sim *sim
	n   int64
}

// tidy mutates only shard-local state; the waiver guards nothing.
// damqvet:sharded stale: no coordinator write below // want "stale damqvet:sharded waiver"
func (w *worker) tidy() {
	w.n++
}

// Tight is hot and calls an alloc-free helper through a coldcall waiver
// that therefore suppresses nothing.
// damqvet:hotpath
func Tight(w *worker) int64 {
	w.n++
	return probeN(w) // damqvet:coldcall stale: probeN is alloc-free // want "stale damqvet:coldcall waiver"
}

func probeN(w *worker) int64 { return w.n }

var _ = orphan{}
