// Package rng is a miniature stand-in for the repo's internal/rng so the
// fixtures can exercise the structure rules without importing the real
// module.
package rng

// Source is a tiny deterministic generator.
type Source struct{ s uint64 }

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{s: seed ^ 0x9e3779b97f4a7c15} }

// Uint64 advances the state.
func (r *Source) Uint64() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}
