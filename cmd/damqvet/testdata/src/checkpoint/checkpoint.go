// Package checkpoint mirrors the real repo's internal/checkpoint shape:
// the zeroalloc rule bans calls into any package named "checkpoint" from
// hot paths — package-level functions and methods on its types alike —
// regardless of what the individual call allocates.
package checkpoint

// Encoder is a minimal stand-in for the snapshot codec's encoder.
type Encoder struct{ buf []byte }

// I64 appends one value. Receiver-rooted and alloc-clean on its own;
// hot callers are still flagged because the package is cold by contract.
func (e *Encoder) I64(v int64) {
	e.buf = append(e.buf, byte(v))
}

// Reset clears the buffer.
func Reset(e *Encoder) {
	e.buf = e.buf[:0]
}
