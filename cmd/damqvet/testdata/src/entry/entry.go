// Package entry seeds structure-rule violations: exported entry points
// must derive their randomness from a caller-supplied seed or Source.
package entry

import "fixture/rng"

var globalSrc = rng.New(1) // want "package-level RNG source"

// Config carries a caller-chosen seed.
type Config struct{ Seed uint64 }

// Run seeds directly from its parameter.
func Run(seed uint64) uint64 {
	return rng.New(seed).Uint64()
}

// RunConfig seeds from a field of a parameter.
func RunConfig(cfg Config) uint64 {
	return rng.New(cfg.Seed).Uint64()
}

// RunDerived seeds from a value computed off a parameter.
func RunDerived(seed uint64) uint64 {
	streams := [2]uint64{seed, seed + 1}
	return rng.New(streams[1]).Uint64()
}

// RunClosure seeds inside a literal from the enclosing parameter.
func RunClosure(seed uint64) uint64 {
	gen := func(i uint64) *rng.Source {
		return rng.New(seed + i)
	}
	return gen(3).Uint64()
}

// RunFixed hides a constant seed from its callers.
func RunFixed() uint64 {
	return rng.New(42).Uint64() // want "seeds an RNG from a value the caller did not supply"
}

// RunSource takes the generator itself; nothing to flag.
func RunSource(src *rng.Source) uint64 {
	return src.Uint64()
}

func runInternal() uint64 {
	// Unexported helpers are not entry points; their callers own the
	// seed discipline.
	return rng.New(7).Uint64()
}

var _ = runInternal
var _ = globalSrc
