// Package alloc seeds zeroalloc-rule violations inside annotated hot
// paths, next to the guarded and receiver-rooted forms the rule must
// accept.
package alloc

import "fmt"

// Trace mirrors the repo's comcobb event recorder shape: a pointer to a
// *Trace-named type is what the nil-guard rule recognizes.
type Trace struct{ events []string }

// Event records one event. Cold path by design.
func (t *Trace) Event(s string) { t.events = append(t.events, s) }

// Ring is a toy hot structure.
type Ring struct {
	slots []int
	trace *Trace
}

// Push is clean: receiver-rooted append and a guarded trace call.
// damqvet:hotpath
func (r *Ring) Push(v int) {
	r.slots = append(r.slots, v)
	if r.trace != nil {
		r.trace.Event("push")
	}
}

// PushAll is clean: the append root is a local derived from the receiver.
// damqvet:hotpath
func (r *Ring) PushAll(vs []int) {
	q := r
	for _, v := range vs {
		q.slots = append(q.slots, v)
	}
}

// Checked is clean: panic arguments are a cold region.
// damqvet:hotpath
func (r *Ring) Checked(i int) int {
	if i < 0 || i >= len(r.slots) {
		panic(fmt.Sprintf("alloc: index %d out of range", i))
	}
	return r.slots[i]
}

// Fill is clean: appending to a parameter slice is the caller's storage.
// damqvet:hotpath
func Fill(dst []int, v int) []int {
	return append(dst, v)
}

func box(v interface{}) {}

func boxVariadic(vs ...interface{}) {}

// Bad collects one violation of each class.
// damqvet:hotpath
func (r *Ring) Bad(v int) []int {
	var tmp []int
	tmp = append(tmp, v) // want "append to a slice not reachable"
	s := fmt.Sprint(v)   // want "fmt.Sprint in hot path"
	s = s + "!"          // want "string concatenation"
	u := "u"
	u += s                       // want "string concatenation"
	f := func() int { return v } // want "closure literal in hot path"
	r.trace.Event(u)             // want "trace method call not dominated by a nil-trace guard"
	box(v)                       // want "argument boxed into interface parameter"
	boxVariadic(v)               // want "argument boxed into interface parameter"
	box(r)                       // pointer-shaped: no boxing allocation
	_ = f
	return tmp
}

// Setup returns annotated and clean anonymous functions: the annotated
// literal's body is checked even though Setup itself is not hot.
func Setup(r *Ring) (func(int) string, func(int)) {
	// damqvet:hotpath
	hot := func(v int) string {
		return fmt.Sprint(v) // want "fmt.Sprint in hot path"
	}
	cold := func(v int) {
		_ = fmt.Sprint(v) // unannotated literal: no finding
	}
	return hot, cold
}
