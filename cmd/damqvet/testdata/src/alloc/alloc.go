// Package alloc seeds zeroalloc-rule violations inside annotated hot
// paths, next to the guarded and receiver-rooted forms the rule must
// accept.
package alloc

import (
	"container/heap"
	"fmt"

	"fixture/obs"
)

// Trace mirrors the repo's comcobb event recorder shape: a pointer to a
// *Trace-named type is one of the sinks the nil-guard rule recognizes.
type Trace struct{ events []string }

// Event records one event. Cold path by design.
func (t *Trace) Event(s string) { t.events = append(t.events, s) }

// RingMetrics mirrors the obs-layer probe bundles: the "Metrics" name
// marks it a sink even though it lives outside an obs package.
type RingMetrics struct {
	Pushes *obs.Counter
}

// RingFaults mirrors the netsim/comcobb fault-injection hooks: a
// nil-when-disabled pointer whose "Faults" name marks it a sink, so the
// zero-overhead contract (guard, never call through nil) is enforced.
type RingFaults struct{ drops int }

// Drop records one injected fault. Cold path by design.
func (f *RingFaults) Drop() { f.drops++ }

// Ring is a toy hot structure.
type Ring struct {
	slots  []int
	trace  *Trace
	m      *RingMetrics
	depth  *obs.Gauge
	faults *RingFaults
}

// Push is clean: receiver-rooted append and guarded sink calls — the
// classic trace guard plus the obs-style metrics-bundle and bare
// instrument guards.
// damqvet:hotpath
func (r *Ring) Push(v int) {
	r.slots = append(r.slots, v)
	if r.trace != nil {
		r.trace.Event("push")
	}
	if r.m != nil {
		r.m.Pushes.Inc()
	}
	if r.depth != nil {
		r.depth.Set(int64(len(r.slots)))
	}
	if r.faults != nil {
		r.faults.Drop()
	}
}

// PushAll is clean: the append root is a local derived from the receiver.
// damqvet:hotpath
func (r *Ring) PushAll(vs []int) {
	q := r
	for _, v := range vs {
		q.slots = append(q.slots, v)
	}
}

// Checked is clean: panic arguments are a cold region.
// damqvet:hotpath
func (r *Ring) Checked(i int) int {
	if i < 0 || i >= len(r.slots) {
		panic(fmt.Sprintf("alloc: index %d out of range", i))
	}
	return r.slots[i]
}

// Fill is clean: appending to a parameter slice is the caller's storage.
// damqvet:hotpath
func Fill(dst []int, v int) []int {
	return append(dst, v)
}

func box(v interface{}) {}

func boxVariadic(vs ...interface{}) {}

// Bad collects one violation of each class.
// damqvet:hotpath
func (r *Ring) Bad(v int) []int {
	var tmp []int
	tmp = append(tmp, v) // want "append to a slice not reachable"
	s := fmt.Sprint(v)   // want "fmt.Sprint in hot path"
	s = s + "!"          // want "string concatenation"
	u := "u"
	u += s                       // want "string concatenation"
	f := func() int { return v } // want "closure literal in hot path"
	r.trace.Event(u)             // want "trace/metrics method call not dominated by a nil-sink guard"
	r.m.Pushes.Inc()             // want "trace/metrics method call not dominated by a nil-sink guard"
	r.depth.Set(1)               // want "trace/metrics method call not dominated by a nil-sink guard"
	r.faults.Drop()              // want "trace/metrics method call not dominated by a nil-sink guard"
	box(v)                       // want "argument boxed into interface parameter"
	boxVariadic(v)               // want "argument boxed into interface parameter"
	box(r)                       // pointer-shaped: no boxing allocation
	_ = f
	return tmp
}

// eventHeap implements heap.Interface. Declaring it is fine — calling
// container/heap on it from a hot path is the violation, because every
// element moves through `any`.
type eventHeap []int

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Schedule is hot: each container/heap call gets exactly one finding
// (the heap rule suppresses the generic boxing finding on the same call).
// damqvet:hotpath
func Schedule(h *eventHeap, v int) int {
	heap.Push(h, v)        // want "container/heap.Push in hot path boxes through any"
	heap.Fix(h, 0)         // want "container/heap.Fix in hot path boxes through any"
	x := heap.Pop(h).(int) // want "container/heap.Pop in hot path boxes through any"
	return x
}

// Drain is cold: container/heap off the hot path draws no finding.
func Drain(h *eventHeap) {
	for h.Len() > 0 {
		heap.Pop(h)
	}
}

// Setup returns annotated and clean anonymous functions: the annotated
// literal's body is checked even though Setup itself is not hot.
func Setup(r *Ring) (func(int) string, func(int)) {
	// damqvet:hotpath
	hot := func(v int) string {
		return fmt.Sprint(v) // want "fmt.Sprint in hot path"
	}
	cold := func(v int) {
		_ = fmt.Sprint(v) // unannotated literal: no finding
	}
	return hot, cold
}
