// Package hotdeep receives the hotpath obligation from another package:
// zeroalloc propagation follows the static call graph across the import
// edge, and the chain names the foreign root.
package hotdeep

import "fmt"

// Note is reached from hotchain.(*Ring).Step's hot body.
func Note(v int) {
	_ = fmt.Sprint(v) // want "fmt.Sprint in hot path.*hot path: Ring.Step -> hotdeep.Note"
}
