package main

import (
	"go/ast"
	"go/types"
)

// The determinism-taint family. The per-package determinism rules flag
// wall-clock reads, global RNG imports, and map-order iteration inside
// the simulation packages — but a helper in any other package can
// launder the same nondeterminism through a return value, and the old
// checker never saw it. This pass summarizes, for every function in the
// program, whether its return value derives from a taint source:
//
//   - time.Now / time.Since results,
//   - package-global math/rand (or math/rand/v2) values,
//   - map iteration order (a range-over-map feeding the return, unless
//     the collected slice is sorted before returning or the loop
//     carries an ordered waiver).
//
// Summaries compose across calls to a fixpoint, so a source two hops
// away still taints. The sink check then runs over the simulation
// packages only: a call to a taint-returning function whose result
// flows into a store to simulation state (a field of the receiver, a
// package variable — anything that outlives the function) or into an
// emitted metric (an argument to a sink-pointer method) is a finding
// that names the full chain back to the source.

// taintFact describes the nondeterministic origin of a value.
type taintFact struct {
	kind  string   // "time.Now", "time.Since", "math/rand", "map iteration order"
	chain []string // call chain from the consuming function to the source
	// waived notes the ordered marker on a map-range source; a waived
	// fact never escapes through a return, and the marker is credited
	// when dropping it changed the summary.
	waived *marker
}

// taintPass computes return-taint summaries for the whole program and
// then checks the simulation-package sinks.
func (c *Checker) taintPass(g *graph) {
	for _, n := range g.nodes {
		c.taintOf(n)
	}
	for _, n := range g.nodes {
		if c.isSimPackage(n.pkg.Path) {
			c.checkTaintSinks(n)
		}
	}
}

// bodyTaint computes the tainted-locals map for one body: local objects
// whose value derives from a taint source, each carrying its fact.
func (c *Checker) bodyTaint(n *funcNode) map[types.Object]*taintFact {
	info := n.pkg.Info
	tainted := map[types.Object]*taintFact{}
	exprFact := c.exprFactFunc(n, tainted)

	for range 8 {
		changed := false
		mark := func(id *ast.Ident, f *taintFact) {
			if id == nil || id.Name == "_" || f == nil {
				return
			}
			if o := objOf(info, id); o != nil && tainted[o] == nil {
				tainted[o] = f
				changed = true
			}
		}
		ast.Inspect(n.body, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							mark(id, exprFact(x.Rhs[i]))
						}
					}
				} else if len(x.Rhs) == 1 {
					if f := exprFact(x.Rhs[0]); f != nil {
						for _, lhs := range x.Lhs {
							if id, ok := lhs.(*ast.Ident); ok {
								mark(id, f)
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range x.Names {
					if i < len(x.Values) {
						mark(id, exprFact(x.Values[i]))
					}
				}
			case *ast.RangeStmt:
				var f *taintFact
				if tv, ok := info.Types[x.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						f = &taintFact{kind: "map iteration order"}
						if m := n.ann.markerFor(markOrdered, c.Fset.Position(x.Pos()).Line); m != nil {
							f.waived = m
						}
					}
				}
				if f == nil {
					f = exprFact(x.X) // ranging over an already-tainted value
				}
				if f != nil {
					if id, ok := x.Key.(*ast.Ident); ok {
						mark(id, f)
					}
					if id, ok := x.Value.(*ast.Ident); ok {
						mark(id, f)
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// The collect-then-sort idiom normalizes iteration order: passing a
	// map-order-tainted slice to sort/slices clears that taint.
	ast.Inspect(n.body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pkgNameOf(info, sel.X)
		if pn == nil {
			return true
		}
		if ip := pn.Imported().Path(); ip != "sort" && ip != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok {
				if o := objOf(info, id); o != nil {
					if f := tainted[o]; f != nil && f.kind == "map iteration order" {
						delete(tainted, o)
					}
				}
			}
		}
		return true
	})
	return tainted
}

// exprFactFunc returns the expression-taint evaluator for one body: the
// first taint fact found inside e, from a source call, a call to a
// taint-returning function, or a reference to a tainted local.
func (c *Checker) exprFactFunc(n *funcNode, tainted map[types.Object]*taintFact) func(ast.Expr) *taintFact {
	info := n.pkg.Info
	sites := map[*ast.CallExpr][]*callSite{}
	for _, s := range n.calls {
		sites[s.call] = append(sites[s.call], s)
	}
	return func(e ast.Expr) *taintFact {
		if e == nil {
			return nil
		}
		var found *taintFact
		ast.Inspect(e, func(nd ast.Node) bool {
			if found != nil {
				return false
			}
			switch x := nd.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if calleeFromPkg(info, x, "time", "Now") {
					found = &taintFact{kind: "time.Now"}
					return false
				}
				if calleeFromPkg(info, x, "time", "Since") {
					found = &taintFact{kind: "time.Since"}
					return false
				}
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if pn := pkgNameOf(info, sel.X); pn != nil {
						ip := pn.Imported().Path()
						if ip == "math/rand" || ip == "math/rand/v2" {
							found = &taintFact{kind: "math/rand global RNG"}
							return false
						}
					}
				}
				for _, site := range sites[x] {
					if site.node == nil {
						continue
					}
					if f := c.taintOf(site.node); f != nil {
						found = &taintFact{
							kind:  f.kind,
							chain: append([]string{site.node.qname()}, f.chain...),
						}
						return false
					}
				}
			case *ast.Ident:
				if o := objOf(info, x); o != nil {
					if f := tainted[o]; f != nil {
						found = f
						return false
					}
				}
			}
			return true
		})
		return found
	}
}

// taintOf computes (and memoizes) one function's return-taint summary.
// Cycles resolve as clean while being explored; a real source on the
// cycle still surfaces through the member that returns it.
func (c *Checker) taintOf(n *funcNode) *taintFact {
	if n.taintDone {
		return n.taint
	}
	if n.taintBusy {
		return nil
	}
	n.taintBusy = true
	defer func() { n.taintBusy = false; n.taintDone = true }()

	tainted := c.bodyTaint(n)
	exprFact := c.exprFactFunc(n, tainted)

	// Named results count as return values when a bare return can see
	// them.
	var namedResults []types.Object
	var resultList *ast.FieldList
	if n.decl != nil {
		resultList = n.decl.Type.Results
	} else {
		resultList = n.lit.Type.Results
	}
	if resultList != nil {
		for _, field := range resultList.List {
			for _, name := range field.Names {
				if o := n.pkg.Info.Defs[name]; o != nil {
					namedResults = append(namedResults, o)
				}
			}
		}
	}

	var ret, waivedRet *taintFact
	record := func(f *taintFact) {
		if f == nil {
			return
		}
		if f.waived != nil {
			if waivedRet == nil {
				waivedRet = f
			}
			return
		}
		if ret == nil {
			ret = f
		}
	}
	ast.Inspect(n.body, func(nd ast.Node) bool {
		rs, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(rs.Results) == 0 {
			for _, o := range namedResults {
				record(tainted[o])
			}
			return true
		}
		for _, e := range rs.Results {
			record(exprFact(e))
		}
		return true
	})

	if ret == nil && waivedRet != nil {
		// The ordered waiver is what kept this summary clean: credit it.
		waivedRet.waived.suppressed = true
	}
	n.taint = ret
	return ret
}

// checkTaintSinks flags the places inside one simulation-package
// function where a cross-function taint fact reaches state that
// outlives the call: stores whose target roots at the receiver, a
// parameter, or a package variable, and arguments to sink-pointer
// method calls (emitted metrics). Facts born inside the same function
// are the intraprocedural determinism family's job and are skipped
// here.
func (c *Checker) checkTaintSinks(n *funcNode) {
	info := n.pkg.Info
	tainted := c.bodyTaint(n)
	exprFact := c.exprFactFunc(n, tainted)
	cross := func(e ast.Expr) *taintFact {
		if f := exprFact(e); f != nil && len(f.chain) > 0 && f.waived == nil {
			return f
		}
		return nil
	}

	stateRoots := map[types.Object]bool{}
	var recv *ast.FieldList
	var ftype *ast.FuncType
	if n.decl != nil {
		recv, ftype = n.decl.Recv, n.decl.Type
	} else {
		ftype = n.lit.Type
	}
	paramObjects(info, recv, ftype, stateRoots)
	isStateStore := func(lhs ast.Expr) bool {
		if id, bare := lhs.(*ast.Ident); bare {
			// Rebinding a local is fine; assigning a package variable is
			// a store that outlives the call.
			ro := objOf(info, id)
			return ro != nil && ro.Parent() == n.pkg.Pkg.Scope()
		}
		root := rootIdent(lhs)
		if root == nil {
			return false
		}
		ro := objOf(info, root)
		if ro == nil {
			return false
		}
		return stateRoots[ro] || ro.Parent() == n.pkg.Pkg.Scope()
	}

	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if !isStateStore(lhs) {
					continue
				}
				var f *taintFact
				if len(x.Lhs) == len(x.Rhs) {
					f = cross(x.Rhs[i])
				} else if len(x.Rhs) == 1 {
					f = cross(x.Rhs[0])
				}
				if f != nil {
					c.reportChain(lhs.Pos(), ruleTaint, f.chain,
						"simulation state assigned a value derived from %s (via %s); plumb a deterministic input instead",
						f.kind, chainString(f.chain))
				}
			}
		case *ast.IncDecStmt:
			// ++/-- carry no new value; nothing to taint.
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, isMethod := info.Selections[sel]; !isMethod {
				return true
			}
			if tv, ok := info.Types[sel.X]; !ok || !isSinkPointer(tv.Type) {
				return true
			}
			for _, a := range x.Args {
				if f := cross(a); f != nil {
					c.reportChain(a.Pos(), ruleTaint, f.chain,
						"emitted metric derives from %s (via %s); metrics must be a pure function of simulation state",
						f.kind, chainString(f.chain))
				}
			}
		}
		return true
	})
}
