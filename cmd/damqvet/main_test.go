package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory for one test; run() resolves the
// module root and relative output paths from it.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeModule materializes a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const tmpGoMod = "module tmpfix\n\ngo 1.22\n"

// TestRunExitCodes pins the driver contract: 0 clean, 1 findings, 2 for
// usage or load errors.
func TestRunExitCodes(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":   tmpGoMod,
			"clean.go": "package tmpfix\n\n// Add adds.\nfunc Add(a, b int) int { return a + b }\n",
		})
		chdir(t, dir)
		var out, errw bytes.Buffer
		if code := run("", false, nil, &out, &errw); code != 0 {
			t.Fatalf("clean module: exit %d, stderr %q, stdout %q", code, errw.String(), out.String())
		}
		if out.Len() != 0 {
			t.Fatalf("clean module should print nothing, got %q", out.String())
		}
	})
	t.Run("findings", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": tmpGoMod,
			"hot.go": "package tmpfix\n\nimport \"fmt\"\n\n// damqvet:hotpath\nfunc Hot(v int) string {\n\treturn fmt.Sprint(v)\n}\n",
		})
		chdir(t, dir)
		var out, errw bytes.Buffer
		if code := run("", false, nil, &out, &errw); code != 1 {
			t.Fatalf("violating module: exit %d, stderr %q", code, errw.String())
		}
		if !strings.Contains(out.String(), "hot.go:7: zeroalloc: fmt.Sprint in hot path") {
			t.Fatalf("missing expected finding in %q", out.String())
		}
	})
	t.Run("unknown-rule", func(t *testing.T) {
		dir := writeModule(t, map[string]string{"go.mod": tmpGoMod, "a.go": "package tmpfix\n"})
		chdir(t, dir)
		var out, errw bytes.Buffer
		if code := run("nosuchrule", false, nil, &out, &errw); code != 2 {
			t.Fatalf("unknown rule: exit %d", code)
		}
	})
	t.Run("load-error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":  tmpGoMod,
			"bad.go":  "package tmpfix\n\nfunc Broken() { return 3 }\n",
			"good.go": "package tmpfix\n",
		})
		chdir(t, dir)
		var out, errw bytes.Buffer
		if code := run("", false, nil, &out, &errw); code != 2 {
			t.Fatalf("type error: exit %d, stderr %q", code, errw.String())
		}
		if !strings.Contains(errw.String(), "damqvet:") {
			t.Fatalf("load error should be reported on stderr, got %q", errw.String())
		}
	})
}

// TestJSONGolden pins the -json record format byte for byte: tools (the
// CI problem matcher, diff-based gating) depend on it staying stable.
func TestJSONGolden(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": tmpGoMod,
		"hot.go": "package tmpfix\n\nimport \"fmt\"\n\n// damqvet:hotpath\nfunc Hot(v int) string {\n\treturn fmt.Sprint(v)\n}\n\nfunc helper() string { return fmt.Sprint(1) }\n\n// damqvet:hotpath\nfunc Deep(v int) string {\n\treturn helper()\n}\n",
	})
	chdir(t, dir)
	var out, errw bytes.Buffer
	if code := run("", true, nil, &out, &errw); code != 1 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
	golden := `{"rule":"zeroalloc","file":"hot.go","line":7,"msg":"fmt.Sprint in hot path allocates; move formatting off the hot path"}
{"rule":"zeroalloc","file":"hot.go","line":10,"msg":"fmt.Sprint in hot path allocates; move formatting off the hot path (hot path: Deep -> helper)","chain":["Deep","helper"]}
`
	if got := out.String(); got != golden {
		t.Fatalf("json output drifted:\n got: %q\nwant: %q", got, golden)
	}
}

// TestSeededViolations is the acceptance check for the interprocedural
// families: a deliberately planted allocation two hops below a hotpath
// root, and a shard-phase callee that stores through coordinator state,
// must both fail the run.
func TestSeededViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": tmpGoMod,
		"internal/hot/hot.go": `package hot

// damqvet:hotpath
func Step() { a() }

func a() { b() }

func b() {
	s := "x"
	s += "y"
	_ = s
}
`,
		"internal/netsim/netsim.go": `package netsim

type sim struct{ cycle int64 }

type worker struct{ sim *sim }

func poke(c *int64) { *c = 1 }

func (w *worker) step() { poke(&w.sim.cycle) }

var _ = (&worker{}).step
`,
	})
	chdir(t, dir)
	var out, errw bytes.Buffer
	if code := run("", false, nil, &out, &errw); code != 1 {
		t.Fatalf("seeded violations must fail: exit %d, stderr %q, stdout %q", code, errw.String(), out.String())
	}
	text := out.String()
	for _, wantLine := range []string{
		"string concatenation in hot path allocates (hot path: Step -> a -> b)",
		"shard method passes coordinator state (via the sim back-pointer) to a callee that stores through it (poke)",
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("missing seeded finding %q in output:\n%s", wantLine, text)
		}
	}
}

// TestSelfCheck runs the analyzer over this repository from inside go
// test: the tree must stay clean under its own rules, with every waiver
// justified.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	chdir(t, filepath.Join("..", ".."))
	var out, errw bytes.Buffer
	if code := run("", false, []string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("damqvet is not clean over its own repository (exit %d):\n%s%s", code, out.String(), errw.String())
	}
}
