package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The whole-program layer. The per-function rule families of the first
// damqvet could not see cross-function facts: a hotpath body calling an
// allocating helper, a shard phase mutating coordinator state through a
// callee, wall-clock readings laundered through a return value. This
// file builds the structure they all share — a go/types-resolved static
// call graph over every loaded package — and the interprocedural passes
// (zeroalloc.go, shard.go, taint.go) layer their summaries on top.

// funcNode is one function of the program: a declared function or
// method, or a damqvet:hotpath-annotated function literal (which is a
// propagation root of its own).
type funcNode struct {
	pkg  *Package
	ann  *fileAnnots
	obj  *types.Func   // nil for annotated literals
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt

	hot     *marker // the hotpath obligation marker, or nil
	sharded *marker // the sharded waiver marker, or nil

	calls []*callSite // static call edges, in source order

	// Analysis caches, owned by the passes that fill them.
	alloc *allocScan // zeroalloc.go
	mut   *mutFacts  // shard.go
	taint *taintFact // taint.go; taintDone marks the memo valid
	taintDone,
	taintBusy bool
}

// name renders the node for chain messages: Func, Type.Method, or — for
// a node outside the package the message is anchored in — the
// pkg-qualified form.
func (n *funcNode) name(from *Package) string {
	var base string
	switch {
	case n.obj != nil && recvOf(n.obj) != nil:
		base = recvTypeName(recvOf(n.obj).Type()) + "." + n.obj.Name()
	case n.obj != nil:
		base = n.obj.Name()
	default:
		base = fmt.Sprintf("func@line%d", n.pkg.Fset().Position(n.lit.Pos()).Line)
	}
	if from != nil && n.pkg != from {
		return n.pkg.Pkg.Name() + "." + base
	}
	return base
}

// qname always package-qualifies the node name; the taint chains cross
// packages by nature, so their links read pkg.Func everywhere.
func (n *funcNode) qname() string {
	return n.pkg.Pkg.Name() + "." + n.name(n.pkg)
}

// Fset returns the file set the package was parsed with (all packages
// share the loader's).
func (p *Package) Fset() *token.FileSet { return p.fset }

// recvOf returns a function's receiver variable, or nil.
func recvOf(fn *types.Func) *types.Var {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Recv()
	}
	return nil
}

// recvTypeName strips the pointer and package path off a receiver type.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// callSite is one static call edge out of a funcNode.
type callSite struct {
	call   *ast.CallExpr
	callee *types.Func // resolved static callee (module or stdlib)
	node   *funcNode   // module-internal callee node, nil for stdlib
	// boundRecv is the receiver expression a method value was bound
	// with (`f := sh.sim.bump; f()` records sh.sim), so the phase rule
	// can see through the indirection. Nil for ordinary calls, whose
	// receiver is in call.Fun.
	boundRecv ast.Expr
}

// graph is the static call graph over every package the checker loaded.
type graph struct {
	c     *Checker
	nodes []*funcNode // deterministic order: package path, then position
	byObj map[*types.Func]*funcNode
}

// buildGraph creates the nodes and resolves the static call edges.
func buildGraph(c *Checker) *graph {
	g := &graph{c: c, byObj: map[*types.Func]*funcNode{}}
	for _, p := range c.pkgs {
		for _, f := range p.Files {
			ann := c.annots[f]
			var declNodes []*funcNode
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &funcNode{
					pkg: p, ann: ann, obj: obj, decl: fd, body: fd.Body,
					hot:     ann.funcMarker(c.Fset, fd, markHotpath),
					sharded: ann.funcMarker(c.Fset, fd, markSharded),
				}
				g.nodes = append(g.nodes, n)
				g.byObj[obj] = n
				declNodes = append(declNodes, n)
			}
			// Annotated function literals outside hot declarations are
			// propagation roots of their own (a probe installed into a
			// struct field at construction time).
			ast.Inspect(f, func(nd ast.Node) bool {
				if fd, ok := nd.(*ast.FuncDecl); ok {
					for _, dn := range declNodes {
						if dn.decl == fd && dn.hot != nil {
							return false
						}
					}
					return true
				}
				lit, ok := nd.(*ast.FuncLit)
				if !ok {
					return true
				}
				if m := ann.markerFor(markHotpath, c.Fset.Position(lit.Pos()).Line); m != nil {
					g.nodes = append(g.nodes, &funcNode{
						pkg: p, ann: ann, lit: lit, body: lit.Body, hot: m,
					})
					return false
				}
				return true
			})
		}
	}
	for _, n := range g.nodes {
		g.resolveCalls(n)
	}
	return g
}

// boundTarget is a function value a local was bound to.
type boundTarget struct {
	fn   *types.Func
	recv ast.Expr // method-value receiver, nil for plain functions
}

// resolveCalls walks one body and records every call whose callee can be
// resolved statically: direct function calls, method calls, and calls
// through locals bound to a function identifier or a method value.
// Calls through interfaces, struct fields, channels, or returned
// function values stay unresolved — the rule passes treat those edges
// as invisible, which is why hot paths prefer direct dispatch.
func (g *graph) resolveCalls(n *funcNode) {
	info := n.pkg.Info
	bindings := collectFuncBindings(info, n.body)
	ast.Inspect(n.body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch o := objOf(info, fun).(type) {
			case *types.Func:
				g.addCall(n, call, o, nil)
			case *types.Var:
				for _, t := range bindings[o] {
					g.addCall(n, call, t.fn, t.recv)
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := objOf(info, fun.Sel).(*types.Func); ok {
				g.addCall(n, call, fn, nil)
			}
		}
		return true
	})
}

func (g *graph) addCall(n *funcNode, call *ast.CallExpr, fn *types.Func, boundRecv ast.Expr) {
	n.calls = append(n.calls, &callSite{
		call: call, callee: fn, node: g.byObj[fn], boundRecv: boundRecv,
	})
}

// collectFuncBindings maps locals to the function values they were
// bound from: `f := helper`, `f := sh.sim.bump` (a method value, whose
// receiver expression is kept), and one-step copies `h := f`. Runs to a
// small fixpoint like the alias collectors.
func collectFuncBindings(info *types.Info, body *ast.BlockStmt) map[types.Object][]boundTarget {
	bindings := map[types.Object][]boundTarget{}
	for range 4 {
		changed := false
		ast.Inspect(body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				lo := objOf(info, lid)
				if lo == nil {
					continue
				}
				var ts []boundTarget
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.Ident:
					switch o := objOf(info, rhs).(type) {
					case *types.Func:
						ts = []boundTarget{{fn: o}}
					case *types.Var:
						ts = bindings[o]
					}
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[rhs]; ok && sel.Kind() == types.MethodVal {
						if fn, ok := sel.Obj().(*types.Func); ok {
							ts = []boundTarget{{fn: fn, recv: rhs.X}}
						}
					} else if fn, ok := objOf(info, rhs.Sel).(*types.Func); ok {
						ts = []boundTarget{{fn: fn}}
					}
				}
				for _, t := range ts {
					dup := false
					for _, have := range bindings[lo] {
						if have.fn == t.fn {
							dup = true
						}
					}
					if !dup {
						bindings[lo] = append(bindings[lo], t)
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return bindings
}

// chainString renders a call chain for a finding message.
func chainString(chain []string) string {
	return strings.Join(chain, " -> ")
}
