package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The phase-safety family (interprocedural sharded-determinism).
//
// The sharded stepping core partitions each stage's switches across
// shard workers and lets the shards run concurrently between barriers.
// The contract that keeps the output byte-identical at any worker count
// is ownership: between barriers a shard may mutate only its own state;
// coordinator state (reached through the shard's `sim` back-pointer) is
// written only in the serial prologue/epilogue that the coordinator runs
// with every worker parked at a barrier.
//
// The rule enforces the contract structurally and, since the call-graph
// rewrite, across function boundaries. Inside any method whose receiver
// struct declares a `sim` field (the shard shape):
//
//   - assignments and ++/-- whose target is reached through that field —
//     directly (sh.sim.cycle = n) or via a local alias (s := sh.sim;
//     s.cycle++) — are flagged, as before;
//
//   - a call that passes coordinator state (an argument, method
//     receiver, or method-value binding that reaches through recv.sim)
//     into a callee that stores through it — at any depth — is flagged
//     with the chain of functions that carries the write.
//
// The callee side comes from bottom-up mutation summaries: for every
// function in the program, the set of its inputs (receiver, then
// parameters) it can store through, propagated to a fixpoint over the
// static call graph. A function carrying a sharded waiver is accepted
// only if the waiver actually suppresses a would-be finding; the waiver
// audit fails it otherwise.

// mutFacts is one function's mutation summary. inputs lists the
// receiver (if any) followed by the parameters; mutated is parallel,
// nil meaning "never stored through".
type mutFacts struct {
	inputs  []types.Object
	mutated []*mutCause
	// aliasOf maps body locals to the bitmask of inputs they alias
	// (q := p; t := q.field).
	aliasOf map[types.Object]uint64
	// links records input values forwarded into callees, pending the
	// global fixpoint.
	links []argLink
}

// mutCause explains one input's mutation: a direct store at pos, or a
// call at pos into site whose calleeInput is mutated (follow the site's
// node summary to reconstruct the chain).
type mutCause struct {
	pos         token.Pos
	site        *callSite
	calleeInput int
	calleeName  string // display name when site.node is nil (stdlib)
}

// argLink is "input idx flows into calleeInput of site".
type argLink struct {
	site        *callSite
	input       int
	calleeInput int
	pos         token.Pos
}

// phasePass runs the phase-safety family: mutation summaries to a
// fixpoint, then the shard-method rule over every simulation package.
func (c *Checker) phasePass(g *graph) {
	for _, n := range g.nodes {
		c.initMut(n)
	}
	// Global fixpoint: lift callee mutations across the recorded links.
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			for _, l := range n.mut.links {
				if n.mut.mutated[l.input] != nil {
					continue
				}
				cn := l.site.node
				if cn == nil || cn.mut == nil {
					continue
				}
				if l.calleeInput < len(cn.mut.mutated) && cn.mut.mutated[l.calleeInput] != nil {
					n.mut.mutated[l.input] = &mutCause{pos: l.pos, site: l.site, calleeInput: l.calleeInput}
					changed = true
				}
			}
		}
	}
	for _, n := range g.nodes {
		if n.decl != nil && c.isSimPackage(n.pkg.Path) {
			c.checkShardMethod(n)
		}
	}
}

// initMut computes the intraprocedural half of a node's summary: direct
// stores through inputs (or their aliases), known-mutating stdlib calls
// (copy, sort.*, slices.*), and the input-to-callee links the fixpoint
// lifts. Only pointer-shaped inputs can carry a mutation back to the
// caller; value receivers and struct-copy parameters are excluded.
func (c *Checker) initMut(n *funcNode) {
	info := n.pkg.Info
	m := &mutFacts{aliasOf: map[types.Object]uint64{}}
	n.mut = m

	var recv *ast.FieldList
	var ftype *ast.FuncType
	if n.decl != nil {
		recv, ftype = n.decl.Recv, n.decl.Type
	} else {
		ftype = n.lit.Type
	}
	addInput := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if o := info.Defs[name]; o != nil {
					m.inputs = append(m.inputs, o)
				}
			}
			// Unnamed inputs still occupy a slot so callee-input
			// indices line up with call-site argument positions.
			if len(field.Names) == 0 {
				m.inputs = append(m.inputs, nil)
			}
		}
	}
	addInput(recv)
	addInput(ftype.Params)
	m.mutated = make([]*mutCause, len(m.inputs))

	inputIdx := func(o types.Object) int {
		if o == nil {
			return -1
		}
		for i, in := range m.inputs {
			if in != nil && in == o {
				return i
			}
		}
		return -1
	}
	// exprInputs returns the bitmask of inputs expr's root reaches.
	exprInputs := func(e ast.Expr) uint64 {
		root := rootIdent(e)
		if root == nil {
			return 0
		}
		ro := objOf(info, root)
		if ro == nil {
			return 0
		}
		if i := inputIdx(ro); i >= 0 && i < 64 {
			return 1 << i
		}
		return m.aliasOf[ro]
	}

	// Alias fixpoint: locals assigned from inputs or existing aliases.
	for range 4 {
		changed := false
		ast.Inspect(n.body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				mask := exprInputs(as.Rhs[i])
				if mask == 0 {
					continue
				}
				if lo := objOf(info, lid); lo != nil && m.aliasOf[lo]&mask != mask {
					m.aliasOf[lo] |= mask
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	markStore := func(mask uint64, pos token.Pos) {
		for i := range m.inputs {
			if mask&(1<<i) != 0 && m.mutated[i] == nil && pointerShaped(m.inputs[i]) {
				m.mutated[i] = &mutCause{pos: pos}
			}
		}
	}
	markVia := func(mask uint64, pos token.Pos, site *callSite, calleeInput int, calleeName string) {
		for i := range m.inputs {
			if mask&(1<<i) != 0 && pointerShaped(m.inputs[i]) {
				if site == nil {
					if m.mutated[i] == nil {
						m.mutated[i] = &mutCause{pos: pos, calleeInput: -1, calleeName: calleeName}
					}
				} else {
					m.links = append(m.links, argLink{site: site, input: i, calleeInput: calleeInput, pos: pos})
				}
			}
		}
	}

	sites := map[*ast.CallExpr][]*callSite{}
	for _, s := range n.calls {
		sites[s.call] = append(sites[s.call], s)
	}

	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if _, bare := lhs.(*ast.Ident); bare {
					continue // rebinding a local, not a store through it
				}
				markStore(exprInputs(lhs), lhs.Pos())
			}
		case *ast.IncDecStmt:
			if _, bare := x.X.(*ast.Ident); !bare {
				markStore(exprInputs(x.X), x.Pos())
			}
		case *ast.UnaryExpr:
			// &input.field escaping disables no analysis here; keeping
			// the summary cheap is the point. The chaos soak and race
			// detector back this rule up at runtime.
		case *ast.CallExpr:
			// copy(dst, src) mutates dst even though dst is never an
			// lvalue of an assignment.
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "copy" && len(x.Args) == 2 {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					markVia(exprInputs(x.Args[0]), x.Pos(), nil, -1, "copy")
					return true
				}
			}
			// sort.X(s, ...) / slices.X(s, ...) reorder their first
			// argument in place.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && len(x.Args) > 0 {
				if pn := pkgNameOf(info, sel.X); pn != nil {
					if ip := pn.Imported().Path(); ip == "sort" || ip == "slices" {
						markVia(exprInputs(x.Args[0]), x.Pos(), nil, -1, pn.Name()+"."+sel.Sel.Name)
						return true
					}
				}
			}
			for _, site := range sites[x] {
				c.linkCall(info, m, x, site, exprInputs, markVia)
			}
		}
		return true
	})
}

// linkCall records how one resolved call forwards this function's inputs
// into the callee: the method receiver (explicit or method-value bound)
// maps to callee input 0, arguments map to the following slots, with the
// variadic tail folded onto the last one.
func (c *Checker) linkCall(info *types.Info, m *mutFacts, call *ast.CallExpr,
	site *callSite, exprInputs func(ast.Expr) uint64,
	markVia func(uint64, token.Pos, *callSite, int, string)) {

	sig, ok := site.callee.Type().(*types.Signature)
	if !ok {
		return
	}
	argBase := 0
	if sig.Recv() != nil {
		argBase = 1
		var recvExpr ast.Expr
		if site.boundRecv != nil {
			recvExpr = site.boundRecv
		} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if selinfo, isSel := info.Selections[sel]; isSel && selinfo.Kind() == types.MethodVal {
				recvExpr = sel.X
			}
		}
		if recvExpr != nil {
			markVia(exprInputs(recvExpr), call.Pos(), site, 0, "")
		}
	}
	nParams := sig.Params().Len()
	for k, arg := range call.Args {
		if !pointerShapedType(info.Types[arg].Type) {
			continue // a copy cannot carry the store back
		}
		slot := k
		if sig.Variadic() && slot >= nParams-1 {
			slot = nParams - 1
		}
		if slot >= nParams {
			continue
		}
		markVia(exprInputs(arg), call.Pos(), site, argBase+slot, "")
	}
}

// pointerShaped reports whether an input variable can carry stores back
// to the caller: pointers, slices, maps, and interfaces can; value
// structs, arrays, and basics are copies.
func pointerShaped(o types.Object) bool {
	if o == nil {
		return false
	}
	return pointerShapedType(o.Type())
}

func pointerShapedType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Chan:
		return true
	}
	return false
}

// checkShardMethod applies the shard-ownership rule to one method whose
// receiver struct declares a `sim` field. Would-be findings are computed
// even under a sharded waiver, so the waiver audit can tell a justified
// waiver from a stale one.
func (c *Checker) checkShardMethod(n *funcNode) {
	recv := shardReceiver(n.pkg.Info, n.decl)
	if recv == nil {
		return
	}
	info := n.pkg.Info
	aliases := map[types.Object]bool{}
	collectSimAliases(info, recv, n.body, aliases)
	reachesSim := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		if selectsSimOfRecv(info, recv, e) {
			return true
		}
		if root := rootIdent(e); root != nil {
			if ro := objOf(info, root); ro != nil && aliases[ro] {
				return true
			}
		}
		return false
	}

	var would []Finding
	flag := func(pos token.Pos, chain []string, format string, args ...any) {
		would = append(would, Finding{
			Pos: c.Fset.Position(pos), Rule: rulePhase,
			Msg: fmt.Sprintf(format, args...), Chain: chain,
		})
	}

	// Direct writes, as in the original rule.
	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isSimWrite(info, recv, aliases, lhs) {
					flag(lhs.Pos(), nil,
						"shard method writes coordinator state through the sim back-pointer; move the write to a serial barrier section or waive with // damqvet:sharded")
				}
			}
		case *ast.IncDecStmt:
			if isSimWrite(info, recv, aliases, x.X) {
				flag(x.Pos(), nil,
					"shard method writes coordinator state through the sim back-pointer; move the write to a serial barrier section or waive with // damqvet:sharded")
			}
		}
		return true
	})

	// Interprocedural: coordinator state handed to a mutating callee.
	for _, site := range n.calls {
		cn := site.node
		if cn == nil || cn.mut == nil {
			continue
		}
		sig, ok := site.callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		argBase := 0
		if sig.Recv() != nil {
			argBase = 1
			recvExpr := site.boundRecv
			if recvExpr == nil {
				if sel, isSel := ast.Unparen(site.call.Fun).(*ast.SelectorExpr); isSel {
					if selinfo, isMeth := info.Selections[sel]; isMeth && selinfo.Kind() == types.MethodVal {
						recvExpr = sel.X
					}
				}
			}
			if reachesSim(recvExpr) && 0 < len(cn.mut.mutated) && cn.mut.mutated[0] != nil {
				chain := mutChain(n, site, 0)
				flag(site.call.Pos(), chain,
					"shard method calls a mutating method on coordinator state reached through the sim back-pointer (%s); move the call to a serial barrier section or waive with // damqvet:sharded",
					chainString(chain))
			}
		}
		nParams := sig.Params().Len()
		for k, arg := range site.call.Args {
			if !reachesSim(arg) {
				continue
			}
			slot := k
			if sig.Variadic() && slot >= nParams-1 {
				slot = nParams - 1
			}
			ci := argBase + slot
			if slot < nParams && ci < len(cn.mut.mutated) && cn.mut.mutated[ci] != nil {
				chain := mutChain(n, site, ci)
				flag(arg.Pos(), chain,
					"shard method passes coordinator state (via the sim back-pointer) to a callee that stores through it (%s); move the write to a serial barrier section or waive with // damqvet:sharded",
					chainString(chain))
			}
		}
	}

	if n.sharded != nil {
		if len(would) > 0 {
			n.sharded.suppressed = true
		}
		return
	}
	c.Findings = append(c.Findings, would...)
}

// mutChain reconstructs the function chain that carries a coordinator
// write, starting at the flagged call site: callee, its callee, ...,
// down to the function containing the raw store (or a known stdlib
// mutator like sort.Slice).
func mutChain(from *funcNode, site *callSite, input int) []string {
	var chain []string
	for range 32 {
		cn := site.node
		if cn == nil {
			break
		}
		chain = append(chain, cn.name(from.pkg))
		cause := cn.mut.mutated[input]
		if cause == nil || cause.site == nil {
			if cause != nil && cause.calleeName != "" {
				chain = append(chain, cause.calleeName)
			}
			break
		}
		site, input = cause.site, cause.calleeInput
	}
	return chain
}

// shardReceiver returns the receiver object of a shard method: a method
// on a (pointer to a) struct that declares a field named `sim`. Nil for
// anything else.
func shardReceiver(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	obj := info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "sim" {
			return obj
		}
	}
	return nil
}

// selectsSimOfRecv reports whether e reaches through `recv.sim`: some
// selector in its chain is the `sim` field applied directly to the
// receiver identifier.
func selectsSimOfRecv(info *types.Info, recv types.Object, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "sim" {
				base := x.X
				for {
					if pe, ok := base.(*ast.ParenExpr); ok {
						base = pe.X
						continue
					}
					break
				}
				if id, ok := base.(*ast.Ident); ok && objOf(info, id) == recv {
					return true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		default:
			return false
		}
	}
}

// collectSimAliases finds locals that reach coordinator state: assigned
// from recv.sim or (one or more steps removed) from an existing alias.
// Runs to a small fixpoint, like addDerivedLocals.
func collectSimAliases(info *types.Info, recv types.Object, body *ast.BlockStmt, aliases map[types.Object]bool) {
	for range 4 {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				rhs := as.Rhs[i]
				reaches := selectsSimOfRecv(info, recv, rhs)
				if !reaches {
					if root := rootIdent(rhs); root != nil {
						if ro := objOf(info, root); ro != nil && aliases[ro] {
							reaches = true
						}
					}
				}
				if reaches {
					if lo := objOf(info, lid); lo != nil && !aliases[lo] {
						aliases[lo] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// isSimWrite reports whether an assignment target mutates coordinator
// state: it selects through recv.sim, or roots at a sim alias. A bare
// identifier is never a shared write (rebinding a local).
func isSimWrite(info *types.Info, recv types.Object, aliases map[types.Object]bool, lhs ast.Expr) bool {
	if _, ok := lhs.(*ast.Ident); ok {
		return false
	}
	if selectsSimOfRecv(info, recv, lhs) {
		return true
	}
	if root := rootIdent(lhs); root != nil {
		if ro := objOf(info, root); ro != nil && aliases[ro] {
			return true
		}
	}
	return false
}
