package main

import (
	"go/ast"
	"go/types"
)

// The sharded-determinism rule (part of the determinism family).
//
// The sharded stepping core partitions each stage's switches across
// shard workers and lets the shards run concurrently between barriers.
// The contract that keeps the output byte-identical at any worker count
// is ownership: between barriers a shard may mutate only its own state;
// coordinator state (reached through the shard's `sim` back-pointer) is
// written only in the serial prologue/epilogue that the coordinator runs
// with every worker parked at a barrier.
//
// This rule enforces the contract structurally: inside any method whose
// receiver struct declares a `sim` field (the shard shape), assignments
// and ++/-- whose target is reached through that field — directly
// (sh.sim.cycle = n) or via a local alias (s := sh.sim; s.cycle++) —
// are flagged unless the function carries a // damqvet:sharded waiver
// recording the audit that its writes are barrier-owned.

// checkShardWrites runs the sharded-determinism rule over one file.
func (c *Checker) checkShardWrites(p *Package, ann fileAnnots, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		recv := shardReceiver(p.Info, fd)
		if recv == nil || isShardedFunc(ann, c.Fset, fd) {
			continue
		}
		aliases := map[types.Object]bool{}
		collectSimAliases(p.Info, recv, fd.Body, aliases)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if isSimWrite(p.Info, recv, aliases, lhs) {
						c.report(lhs.Pos(), ruleDeterminism,
							"shard method writes coordinator state through the sim back-pointer; move the write to a serial barrier section or waive with // damqvet:sharded")
					}
				}
			case *ast.IncDecStmt:
				if isSimWrite(p.Info, recv, aliases, x.X) {
					c.report(x.Pos(), ruleDeterminism,
						"shard method writes coordinator state through the sim back-pointer; move the write to a serial barrier section or waive with // damqvet:sharded")
				}
			}
			return true
		})
	}
}

// shardReceiver returns the receiver object of a shard method: a method
// on a (pointer to a) struct that declares a field named `sim`. Nil for
// anything else.
func shardReceiver(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	obj := info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "sim" {
			return obj
		}
	}
	return nil
}

// selectsSimOfRecv reports whether e reaches through `recv.sim`: some
// selector in its chain is the `sim` field applied directly to the
// receiver identifier.
func selectsSimOfRecv(info *types.Info, recv types.Object, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "sim" {
				base := x.X
				for {
					if pe, ok := base.(*ast.ParenExpr); ok {
						base = pe.X
						continue
					}
					break
				}
				if id, ok := base.(*ast.Ident); ok && objOf(info, id) == recv {
					return true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// collectSimAliases finds locals that reach coordinator state: assigned
// from recv.sim or (one or more steps removed) from an existing alias.
// Runs to a small fixpoint, like addDerivedLocals.
func collectSimAliases(info *types.Info, recv types.Object, body *ast.BlockStmt, aliases map[types.Object]bool) {
	for range 4 {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				rhs := as.Rhs[i]
				reaches := selectsSimOfRecv(info, recv, rhs)
				if !reaches {
					if root := rootIdent(rhs); root != nil {
						if ro := objOf(info, root); ro != nil && aliases[ro] {
							reaches = true
						}
					}
				}
				if reaches {
					if lo := objOf(info, lid); lo != nil && !aliases[lo] {
						aliases[lo] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// isSimWrite reports whether an assignment target mutates coordinator
// state: it selects through recv.sim, or roots at a sim alias. A bare
// identifier is never a shared write (rebinding a local).
func isSimWrite(info *types.Info, recv types.Object, aliases map[types.Object]bool, lhs ast.Expr) bool {
	if _, ok := lhs.(*ast.Ident); ok {
		return false
	}
	if selectsSimOfRecv(info, recv, lhs) {
		return true
	}
	if root := rootIdent(lhs); root != nil {
		if ro := objOf(info, root); ro != nil && aliases[ro] {
			return true
		}
	}
	return false
}
