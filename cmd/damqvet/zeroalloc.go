package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// zeroalloc enforces the 0-allocs/op invariant on functions annotated
// // damqvet:hotpath. Inside an annotated body it flags the allocation
// classes the benchmark gate has caught in the past: fmt.* calls,
// container/heap operations (every element moves through `any`), string
// concatenation, closure literals, appends whose backing slice is not
// reachable from the receiver or a parameter, concrete values boxed into
// interface arguments, and trace/metrics sink method calls outside a
// nil-sink guard.
//
// Panic arguments and the bodies of `if sink != nil { ... }` guards
// (over a *Trace, a *Metrics bundle, or an obs instrument) are cold
// regions: the rules do not apply there.
func (c *Checker) zeroalloc(p *Package) {
	for _, f := range p.Files {
		ann := collectAnnots(c.Fset, f)
		var hotDecls []*ast.FuncDecl
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isHotpathFunc(ann, c.Fset, fd) {
				hotDecls = append(hotDecls, fd)
				c.checkHotBody(p, fd.Recv, fd.Type, fd.Body)
			}
		}
		// Annotated anonymous functions: hot paths built as literals
		// (e.g. a probe installed into a struct field). Literals inside
		// an already-hot declaration are skipped — the closure rule has
		// flagged them there.
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				for _, hd := range hotDecls {
					if fd == hd {
						return false
					}
				}
				return true
			}
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if isHotpathLit(ann, c.Fset, lit) {
				c.checkHotBody(p, nil, lit.Type, lit.Body)
				return false
			}
			return true
		})
	}
}

// span is a half-open-ish source region [lo, hi] in token.Pos space.
type span struct{ lo, hi token.Pos }

// checkHotBody applies the zeroalloc rules to one annotated function
// body.
func (c *Checker) checkHotBody(p *Package, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := p.Info
	cold := coldSpans(info, body)
	inCold := func(pos token.Pos) bool {
		for _, s := range cold {
			if s.lo <= pos && pos <= s.hi {
				return true
			}
		}
		return false
	}

	allowed := map[types.Object]bool{}
	paramObjects(info, recv, ftype, allowed)
	addDerivedLocals(info, body, allowed)

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inCold(n.Pos()) {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			c.report(x.Pos(), ruleZeroalloc, "closure literal in hot path allocates; hoist it or pass a method value built at construction time")
			return false
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x) {
				c.report(x.Pos(), ruleZeroalloc, "string concatenation in hot path allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				c.report(x.Pos(), ruleZeroalloc, "string concatenation in hot path allocates")
			}
		case *ast.CallExpr:
			c.checkHotCall(p, x, allowed)
		}
		return true
	})
}

// checkHotCall applies the per-call rules: fmt usage, non-receiver
// appends, unguarded trace methods, and interface boxing of arguments.
func (c *Checker) checkHotCall(p *Package, call *ast.CallExpr, allowed map[types.Object]bool) {
	info := p.Info
	if calleeFromPkg(info, call, "fmt", "") {
		sel := call.Fun.(*ast.SelectorExpr)
		c.report(call.Pos(), ruleZeroalloc, "fmt.%s in hot path allocates; move formatting off the hot path", sel.Sel.Name)
		return
	}
	if calleeFromPkg(info, call, "container/heap", "") {
		// heap.Interface moves every element through `any`: each Push
		// boxes its argument and each Pop boxes the return, one
		// allocation per event no matter what the elements are. The
		// returns also suppress the generic boxing finding on the same
		// call — one finding, naming the real fix.
		sel := call.Fun.(*ast.SelectorExpr)
		c.report(call.Pos(), ruleZeroalloc, "container/heap.%s in hot path boxes through any; use a typed heap (see internal/eventsim.Engine)", sel.Sel.Name)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
			return // argument is a cold span; the function is aborting
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			root := rootIdent(call.Args[0])
			var ro types.Object
			if root != nil {
				ro = objOf(info, root)
			}
			if ro == nil || !allowed[ro] {
				c.report(call.Pos(), ruleZeroalloc, "append to a slice not reachable from the receiver or a parameter; growth allocates on the hot path")
			}
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			if tv, ok := info.Types[sel.X]; ok && isSinkPointer(tv.Type) {
				c.report(call.Pos(), ruleZeroalloc, "trace/metrics method call not dominated by a nil-sink guard; wrap it in `if sink != nil { ... }`")
				return
			}
		}
	}
	c.checkBoxing(p, call)
}

// checkBoxing flags concrete, non-pointer-shaped values passed where the
// callee expects an interface: the conversion boxes the value and
// allocates. Pointer-shaped kinds (pointers, channels, maps, funcs,
// unsafe pointers) convert without allocating and are permitted, as are
// nil and values that are already interfaces.
func (c *Checker) checkBoxing(p *Package, call *ast.CallExpr) {
	info := p.Info
	ftv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if ftv.IsType() {
		// Conversion expression T(x).
		if isInterface(ftv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			c.report(call.Args[0].Pos(), ruleZeroalloc, "conversion to interface boxes a concrete value and allocates on the hot path")
		}
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && boxes(info, arg) {
			c.report(arg.Pos(), ruleZeroalloc, "argument boxed into interface parameter allocates on the hot path; pass a pointer or restructure the call")
		}
	}
}

// coldSpans collects the source regions where allocation is acceptable:
// panic arguments (the function is aborting) and the bodies of
// `if sink != nil { ... }` guards over trace/obs sinks (observability is
// the opt-in path; guarded-off it never runs).
func coldSpans(info *types.Info, body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					spans = append(spans, span{x.Lparen, x.Rparen})
				}
			}
		case *ast.IfStmt:
			if isNilSinkGuard(info, x.Cond) {
				spans = append(spans, span{x.Body.Pos(), x.Body.End()})
			}
		}
		return true
	})
	return spans
}

// isNilSinkGuard matches `s != nil` (either operand order) where s has a
// pointer-to-sink type (Trace/Metrics/Observer-named, or any obs-package
// type); `if s := expr; s != nil` hits this too since only the condition
// is inspected. Compound conditions are deliberately not recognized:
// `m != nil && other` would make the cold region's reachability depend
// on non-sink state, so hot code must nest the guard instead.
func isNilSinkGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		val, nilSide := pair[0], pair[1]
		if tv, ok := info.Types[nilSide]; !ok || !tv.IsNil() {
			continue
		}
		if tv, ok := info.Types[val]; ok && isSinkPointer(tv.Type) {
			return true
		}
	}
	return false
}

// isStringExpr reports whether e has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether passing arg to an interface parameter allocates:
// true for concrete non-pointer-shaped values, false for nil, values that
// are already interfaces, and pointer-shaped kinds.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}
