package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The transitive zero-alloc family. A body annotated with the hotpath
// marker is a propagation root: the allocation rules apply to it and,
// through the static call graph, to every function it can reach — a
// hotpath body may only call callees that are themselves alloc-clean,
// annotated hot (checked as their own root), or waived at the call line
// with the coldcall marker after an audit (amortized growth, pool
// refill). A violation two hops down reports with the call chain that
// reaches it: "... (hot path: Step -> probe)".
//
// Inside any hot-reachable body the pass flags the allocation classes
// the benchmark gate has caught in the past: fmt.* calls,
// container/heap operations (every element moves through `any`), string
// concatenation, closure literals, appends whose backing slice is not
// reachable from the receiver or a parameter, concrete values boxed
// into interface arguments, and trace/metrics sink method calls outside
// a nil-sink guard. Panic arguments and the bodies of
// `if sink != nil { ... }` guards are cold regions: the rules do not
// apply there and calls inside them are not propagation edges.

// allocScan caches the intraprocedural half of the pass for one body:
// the construct findings (already filtered by coldcall line waivers),
// the call edges the transitive pass may descend through, and the
// waivers that filtered something (credited as suppressing only if the
// body is actually reached from a hot root).
type allocScan struct {
	findings    []Finding
	calls       []*callSite // non-cold, non-waived module-internal edges
	suppressors []*marker   // coldcall markers that filtered a direct finding
	waivedCalls []waivedCall
}

// waivedCall is a call edge severed by a coldcall waiver; the audit
// credits the marker only if descending would have found something.
type waivedCall struct {
	m    *marker
	node *funcNode
}

// zeroallocPass runs the transitive zero-alloc family over the program:
// every hotpath-annotated declaration or literal is a root, and the
// obligation propagates depth-first through resolved call edges. A
// function reached from several roots is checked and reported once,
// under the first chain that reaches it (deterministic: roots and calls
// are visited in source order).
func (c *Checker) zeroallocPass(g *graph) {
	visited := map[*funcNode]bool{}
	dirtyMemo := map[*funcNode]int{}
	var visit func(n *funcNode, root *funcNode, chain []string)
	visit = func(n, root *funcNode, chain []string) {
		if visited[n] {
			return
		}
		visited[n] = true
		scan := c.allocScanOf(n)
		for _, f := range scan.findings {
			if len(chain) > 1 {
				f.Msg += " (hot path: " + chainString(chain) + ")"
				f.Chain = append([]string(nil), chain...)
			}
			c.Findings = append(c.Findings, f)
		}
		for _, m := range scan.suppressors {
			m.suppressed = true
		}
		for _, wc := range scan.waivedCalls {
			if wc.node != nil && wc.node.hot == nil && c.allocDirty(wc.node, dirtyMemo) {
				wc.m.suppressed = true
			}
		}
		for _, site := range scan.calls {
			if site.node.hot != nil {
				continue // a root of its own
			}
			next := append(append([]string(nil), chain...), site.node.name(root.pkg))
			visit(site.node, root, next)
		}
	}
	for _, n := range g.nodes {
		if n.hot != nil {
			visit(n, n, []string{n.name(n.pkg)})
		}
	}
}

// allocDirty reports whether checking n (and its non-hot, non-waived
// callees, transitively) would produce at least one finding — the test
// that keeps coldcall waivers honest. Cycles count as clean while being
// explored.
func (c *Checker) allocDirty(n *funcNode, memo map[*funcNode]int) bool {
	const exploring, clean, dirty = 1, 2, 3
	switch memo[n] {
	case exploring, clean:
		return false
	case dirty:
		return true
	}
	memo[n] = exploring
	scan := c.allocScanOf(n)
	res := clean
	if len(scan.findings) > 0 {
		res = dirty
	}
	for _, site := range scan.calls {
		if res == dirty {
			break
		}
		if site.node.hot == nil && c.allocDirty(site.node, memo) {
			res = dirty
		}
	}
	memo[n] = res
	return res == dirty
}

// allocScanOf computes (and caches) the intraprocedural scan of one
// body.
func (c *Checker) allocScanOf(n *funcNode) *allocScan {
	if n.alloc != nil {
		return n.alloc
	}
	scan := &allocScan{}
	n.alloc = scan
	info := n.pkg.Info

	cold := coldSpans(info, n.body)
	inCold := func(pos token.Pos) bool {
		for _, s := range cold {
			if s.lo <= pos && pos <= s.hi {
				return true
			}
		}
		return false
	}

	var recv *ast.FieldList
	var ftype *ast.FuncType
	if n.decl != nil {
		recv, ftype = n.decl.Recv, n.decl.Type
	} else {
		ftype = n.lit.Type
	}
	allowed := map[types.Object]bool{}
	paramObjects(info, recv, ftype, allowed)
	addDerivedLocals(info, n.body, allowed)

	sites := map[*ast.CallExpr][]*callSite{}
	for _, s := range n.calls {
		sites[s.call] = append(sites[s.call], s)
	}

	// raw findings and candidate edges, before waiver filtering.
	var raw []Finding
	flag := func(pos token.Pos, format string, args ...any) {
		raw = append(raw, Finding{Pos: c.Fset.Position(pos), Rule: ruleZeroalloc, Msg: fmt.Sprintf(format, args...)})
	}
	type edge struct {
		site *callSite
		line int
	}
	var edges []edge

	ast.Inspect(n.body, func(nd ast.Node) bool {
		if nd == nil {
			return true
		}
		if inCold(nd.Pos()) {
			return false
		}
		switch x := nd.(type) {
		case *ast.FuncLit:
			flag(x.Pos(), "closure literal in hot path allocates; hoist it or pass a method value built at construction time")
			return false
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x) {
				flag(x.Pos(), "string concatenation in hot path allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				flag(x.Pos(), "string concatenation in hot path allocates")
			}
		case *ast.CallExpr:
			if c.checkHotCall(n.pkg, x, allowed, flag) {
				for _, site := range sites[x] {
					if site.node != nil {
						edges = append(edges, edge{site, c.Fset.Position(x.Pos()).Line})
					}
				}
			}
		}
		return true
	})

	// A coldcall waiver governs its source line: it filters every alloc
	// finding on the line and severs every call edge leaving it.
	for _, f := range raw {
		if m := n.ann.markerFor(markColdcall, f.Pos.Line); m != nil {
			already := false
			for _, have := range scan.suppressors {
				if have == m {
					already = true
				}
			}
			if !already {
				scan.suppressors = append(scan.suppressors, m)
			}
			continue
		}
		scan.findings = append(scan.findings, f)
	}
	for _, e := range edges {
		if m := n.ann.markerFor(markColdcall, e.line); m != nil {
			scan.waivedCalls = append(scan.waivedCalls, waivedCall{m: m, node: e.site.node})
			continue
		}
		scan.calls = append(scan.calls, e.site)
	}
	return scan
}

// checkHotCall applies the per-call rules: fmt usage, container/heap,
// non-receiver appends, unguarded trace methods, and interface boxing of
// arguments. It reports whether the call survives as a propagation edge
// (a flagged or builtin call is a finding or a no-op, not an edge).
func (c *Checker) checkHotCall(p *Package, call *ast.CallExpr, allowed map[types.Object]bool, flag func(token.Pos, string, ...any)) bool {
	info := p.Info
	if calleeFromPkg(info, call, "fmt", "") {
		sel := call.Fun.(*ast.SelectorExpr)
		flag(call.Pos(), "fmt.%s in hot path allocates; move formatting off the hot path", sel.Sel.Name)
		return false
	}
	if calleeFromPkg(info, call, "container/heap", "") {
		// heap.Interface moves every element through `any`: each Push
		// boxes its argument and each Pop boxes the return, one
		// allocation per event no matter what the elements are. The
		// return also suppresses the generic boxing finding on the same
		// call — one finding, naming the real fix.
		sel := call.Fun.(*ast.SelectorExpr)
		flag(call.Pos(), "container/heap.%s in hot path boxes through any; use a typed heap (see internal/eventsim.Engine)", sel.Sel.Name)
		return false
	}
	if isCheckpointCall(info, call) {
		flag(call.Pos(), "checkpoint call in hot path; the snapshot codec is cold by contract — save at a cycle boundary outside Step")
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
			return false // argument is a cold span; the function is aborting
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			root := rootIdent(call.Args[0])
			var ro types.Object
			if root != nil {
				ro = objOf(info, root)
			}
			if ro == nil || !allowed[ro] {
				flag(call.Pos(), "append to a slice not reachable from the receiver or a parameter; growth allocates on the hot path")
			}
		}
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			if tv, ok := info.Types[sel.X]; ok && isSinkPointer(tv.Type) {
				flag(call.Pos(), "trace/metrics method call not dominated by a nil-sink guard; wrap it in `if sink != nil { ... }`")
				return false
			}
		}
	}
	c.checkBoxing(p, call, flag)
	return true
}

// isCheckpointCall reports whether call invokes anything from a package
// named "checkpoint": a package-level function (checkpoint.WriteFile) or
// a method on one of its types (Encoder.I64, Decoder.Section). The
// snapshot codec walks every switch and buffers whole sections — cold by
// contract, whatever it allocates — so a hot body reaching it is flagged
// unconditionally rather than judged allocation by allocation.
func isCheckpointCall(info *types.Info, call *ast.CallExpr) bool {
	if calleeFromPkg(info, call, "checkpoint", "") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selInfo, ok := info.Selections[sel]
	if !ok {
		return false
	}
	pkg := selInfo.Obj().Pkg()
	return pkg != nil && pkg.Name() == "checkpoint"
}

// checkBoxing flags concrete, non-pointer-shaped values passed where the
// callee expects an interface: the conversion boxes the value and
// allocates. Pointer-shaped kinds (pointers, channels, maps, funcs,
// unsafe pointers) convert without allocating and are permitted, as are
// nil and values that are already interfaces.
func (c *Checker) checkBoxing(p *Package, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	info := p.Info
	ftv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if ftv.IsType() {
		// Conversion expression T(x).
		if isInterface(ftv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			flag(call.Args[0].Pos(), "conversion to interface boxes a concrete value and allocates on the hot path")
		}
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && boxes(info, arg) {
			flag(arg.Pos(), "argument boxed into interface parameter allocates on the hot path; pass a pointer or restructure the call")
		}
	}
}

// coldSpans collects the source regions where allocation is acceptable:
// panic arguments (the function is aborting) and the bodies of
// `if sink != nil { ... }` guards over trace/obs sinks (observability is
// the opt-in path; guarded-off it never runs).
func coldSpans(info *types.Info, body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					spans = append(spans, span{x.Lparen, x.Rparen})
				}
			}
		case *ast.IfStmt:
			if isNilSinkGuard(info, x.Cond) {
				spans = append(spans, span{x.Body.Pos(), x.Body.End()})
			}
		}
		return true
	})
	return spans
}

// span is a half-open-ish source region [lo, hi] in token.Pos space.
type span struct{ lo, hi token.Pos }

// isNilSinkGuard matches `s != nil` (either operand order) where s has a
// pointer-to-sink type (Trace/Metrics/Observer-named, or any obs-package
// type); `if s := expr; s != nil` hits this too since only the condition
// is inspected. Compound conditions are deliberately not recognized:
// `m != nil && other` would make the cold region's reachability depend
// on non-sink state, so hot code must nest the guard instead.
func isNilSinkGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		val, nilSide := pair[0], pair[1]
		if tv, ok := info.Types[nilSide]; !ok || !tv.IsNil() {
			continue
		}
		if tv, ok := info.Types[val]; ok && isSinkPointer(tv.Type) {
			return true
		}
	}
	return false
}

// isStringExpr reports whether e has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether passing arg to an interface parameter allocates:
// true for concrete non-pointer-shaped values, false for nil, values that
// are already interfaces, and pointer-shaped kinds.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}
