package main

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation comment: the finding on its line must match re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants extracts `// want "regex" ["regex" ...]` expectations from
// a parsed fixture file.
func collectWants(t *testing.T, l *Loader, f *ast.File) []*want {
	t.Helper()
	var ws []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := l.Fset.Position(c.Pos())
			for _, q := range strings.Split(strings.TrimSpace(m[1]), `" "`) {
				q = strings.Trim(q, `"`)
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
				}
				ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return ws
}

// loadFixtures type-checks the fixture module and returns its packages.
func loadFixtures(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	l, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) < 4 {
		t.Fatalf("expected at least 4 fixture packages, got %d", len(pkgs))
	}
	return l, pkgs
}

// TestFixtures runs all rule families over the fixture module and checks
// findings against the // want comments in both directions: every
// finding must be expected, and every expectation must fire.
func TestFixtures(t *testing.T) {
	l, pkgs := loadFixtures(t)
	c, err := NewChecker(l.Fset, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SimAll = true
	var wants []*want
	for _, p := range pkgs {
		c.Check(p)
		for _, f := range p.Files {
			wants = append(wants, collectWants(t, l, f)...)
		}
	}
	for _, f := range c.Sorted() {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Msg) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestRuleSelection checks that -rules style selection isolates families:
// with only zeroalloc enabled, the determinism and structure fixtures
// produce nothing.
func TestRuleSelection(t *testing.T) {
	l, pkgs := loadFixtures(t)
	c, err := NewChecker(l.Fset, []string{"zeroalloc"})
	if err != nil {
		t.Fatal(err)
	}
	c.SimAll = true
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "/det") || strings.HasSuffix(p.Path, "/entry") {
			c.Check(p)
		}
	}
	if len(c.Findings) != 0 {
		t.Fatalf("zeroalloc-only run over det+entry should be clean, got %v", c.Findings)
	}
}

// TestEachFamilyFires guards against a rule family silently going dead:
// each family on its own must produce at least one finding somewhere in
// the fixtures.
func TestEachFamilyFires(t *testing.T) {
	for _, rule := range AllRules {
		l, pkgs := loadFixtures(t)
		c, err := NewChecker(l.Fset, []string{rule})
		if err != nil {
			t.Fatal(err)
		}
		c.SimAll = true
		for _, p := range pkgs {
			c.Check(p)
		}
		if len(c.Findings) == 0 {
			t.Errorf("rule family %s produced no findings on the fixtures", rule)
		}
	}
}

// TestUnknownRule checks the driver-level validation.
func TestUnknownRule(t *testing.T) {
	if _, err := NewChecker(nil, []string{"nosuchrule"}); err == nil {
		t.Fatal("expected an error for an unknown rule name")
	}
}
