package main

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation comment: the finding on its line must match re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants extracts `// want "regex" ["regex" ...]` expectations from
// a parsed fixture file.
func collectWants(t *testing.T, l *Loader, f *ast.File) []*want {
	t.Helper()
	var ws []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := l.Fset.Position(c.Pos())
			for _, q := range strings.Split(strings.TrimSpace(m[1]), `" "`) {
				q = strings.Trim(q, `"`)
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
				}
				ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return ws
}

// loadFixtures type-checks the fixture module and returns its packages.
// It takes testing.TB so the analysis benchmark can share the load.
func loadFixtures(t testing.TB) (*Loader, []*Package) {
	t.Helper()
	l, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) < 4 {
		t.Fatalf("expected at least 4 fixture packages, got %d", len(pkgs))
	}
	return l, pkgs
}

// checkFixtures runs a checker with the given rule families over the
// fixture module and returns the checker.
func checkFixtures(t *testing.T, l *Loader, pkgs []*Package, rules []string) *Checker {
	t.Helper()
	c, err := NewChecker(l.Fset, rules)
	if err != nil {
		t.Fatal(err)
	}
	c.SimAll = true
	for _, p := range pkgs {
		c.Add(p)
	}
	c.Finish()
	return c
}

// TestFixtures runs all rule families over the fixture module and checks
// findings against the // want comments in both directions: every
// finding must be expected, and every expectation must fire.
func TestFixtures(t *testing.T) {
	l, pkgs := loadFixtures(t)
	c := checkFixtures(t, l, pkgs, nil)
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			wants = append(wants, collectWants(t, l, f)...)
		}
	}
	for _, f := range c.Sorted() {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Msg) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestRuleSelection checks that -rules style selection isolates families:
// with only zeroalloc enabled, the determinism and structure fixtures
// produce nothing.
func TestRuleSelection(t *testing.T) {
	l, pkgs := loadFixtures(t)
	var sub []*Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "/det") || strings.HasSuffix(p.Path, "/entry") {
			sub = append(sub, p)
		}
	}
	c := checkFixtures(t, l, sub, []string{"zeroalloc"})
	if len(c.Findings) != 0 {
		t.Fatalf("zeroalloc-only run over det+entry should be clean, got %v", c.Findings)
	}
}

// TestEachFamilyFires guards against a rule family silently going dead:
// each family must produce at least one finding somewhere in the
// fixtures. The waiver audit can only run with the full set (it judges
// markers by what the other families did), so it is exercised through an
// all-rules run filtered down to its findings.
func TestEachFamilyFires(t *testing.T) {
	for _, rule := range AllRules {
		l, pkgs := loadFixtures(t)
		sel := []string{rule}
		if rule == ruleWaiver {
			sel = nil
		}
		c := checkFixtures(t, l, pkgs, sel)
		n := 0
		for _, f := range c.Findings {
			if f.Rule == rule {
				n++
			}
		}
		if n == 0 {
			t.Errorf("rule family %s produced no findings on the fixtures", rule)
		}
	}
}

// TestUnknownRule checks the driver-level validation.
func TestUnknownRule(t *testing.T) {
	if _, err := NewChecker(nil, []string{"nosuchrule"}); err == nil {
		t.Fatal("expected an error for an unknown rule name")
	}
}

// TestWaiverNeedsAllRules checks that the waiver audit refuses to run
// without the attachment records of the other families.
func TestWaiverNeedsAllRules(t *testing.T) {
	if _, err := NewChecker(nil, []string{"waiver"}); err == nil {
		t.Fatal("expected an error for waiver without the other families")
	}
	if _, err := NewChecker(nil, []string{"waiver", "zeroalloc"}); err == nil {
		t.Fatal("expected an error for a partial set including waiver")
	}
}
