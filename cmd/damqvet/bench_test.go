package main

import "testing"

// BenchmarkDamqvetAnalysis measures one full analysis pass — call-graph
// construction plus all six rule families — over the pre-loaded fixture
// module. Parsing and type-checking stay outside the loop, so allocs/op
// reflects only the analysis engine and is deterministic; the benchreport
// baseline gates it exactly, while its wall clock is recorded with
// -notime (it scales with fixture size, not simulator performance).
func BenchmarkDamqvetAnalysis(b *testing.B) {
	l, pkgs := loadFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		c, err := NewChecker(l.Fset, nil)
		if err != nil {
			b.Fatal(err)
		}
		c.SimAll = true
		for _, p := range pkgs {
			c.Add(p)
		}
		c.Finish()
		if len(c.Findings) == 0 {
			b.Fatal("analysis produced no findings over the fixtures")
		}
	}
}
