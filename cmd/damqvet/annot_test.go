package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const annotSrc = `package p

type T struct{ n int }

// Len reports the length.
// damqvet:hotpath ring accessor, on the cycle path
func (t *T) Len() int { return t.n }

// damqvet:hotpath
func Free(x int) int { return x + 1 }

func Plain(x int) int { return x + 2 } // damqvet:hotpath trailing form

// NotHot has a lookalike marker that must not count.
// damqvet:hotpathological
func NotHot() {}

func Maker() (func() int, func() int) {
	// damqvet:hotpath annotated anonymous function
	hot := func() int { return 1 }
	cold := func() int { return 2 }
	return hot, cold
}

func SameLine() func() int {
	f := func() int { return 3 } // damqvet:hotpath
	return f
}

func Ranges(m map[string]int) int {
	s := 0
	// damqvet:ordered audited
	for _, v := range m {
		s += v
	}
	for k := range m { // damqvet:ordered trailing form
		_ = k
	}
	for k2 := range m {
		_ = k2
	}
	return s
}
`

func parseAnnotSrc(t *testing.T) (*token.FileSet, *ast.File, *fileAnnots) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "annot.go", annotSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, collectAnnots(fset, f)
}

// TestHotpathDecls covers the marker on a method doc, a plain func, the
// trailing same-line form, and the lookalike that must not match.
func TestHotpathDecls(t *testing.T) {
	fset, f, ann := parseAnnotSrc(t)
	got := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got[fd.Name.Name] = ann.funcMarker(fset, fd, markHotpath) != nil
		}
	}
	expect := map[string]bool{
		"Len":      true,  // doc-comment marker on a method
		"Free":     true,  // marker line directly above a func
		"Plain":    true,  // trailing marker on the same line
		"NotHot":   false, // damqvet:hotpathological is not the marker
		"Maker":    false,
		"SameLine": false,
		"Ranges":   false,
	}
	for name, want := range expect {
		if got[name] != want {
			t.Errorf("hotpath marker on %s = %v, want %v", name, got[name], want)
		}
	}
}

// TestHotpathLits covers annotated anonymous functions: marker on the
// line above and trailing on the same line, with an unannotated sibling.
func TestHotpathLits(t *testing.T) {
	fset, f, ann := parseAnnotSrc(t)
	var hot, cold, sameLine bool
	var nLits int
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		nLits++
		marked := ann.markerFor(markHotpath, fset.Position(lit.Pos()).Line) != nil
		switch line := fset.Position(lit.Pos()).Line; line {
		case 20:
			hot = marked
		case 21:
			cold = marked
		case 26:
			sameLine = marked
		}
		return true
	})
	if nLits != 3 {
		t.Fatalf("expected 3 function literals in the test source, found %d", nLits)
	}
	if !hot {
		t.Error("literal under a marker line should be hot")
	}
	if cold {
		t.Error("unannotated literal should not be hot")
	}
	if !sameLine {
		t.Error("literal with a trailing same-line marker should be hot")
	}
}

// TestOrderedWaivers covers the waiver above the loop, trailing on the
// loop line, and a loop with no waiver.
func TestOrderedWaivers(t *testing.T) {
	fset, f, ann := parseAnnotSrc(t)
	var got []bool
	ast.Inspect(f, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			got = append(got, ann.markerFor(markOrdered, fset.Position(rs.Pos()).Line) != nil)
		}
		return true
	})
	want := []bool{true, true, false}
	if len(got) != len(want) {
		t.Fatalf("expected %d range statements, found %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range #%d: waiver = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMarkerInventory covers the audit bookkeeping collectAnnots feeds:
// unknown spellings are collected (not dropped), and markerFor records
// attachment.
func TestMarkerInventory(t *testing.T) {
	_, _, ann := parseAnnotSrc(t)
	var unknown []*marker
	for _, m := range ann.all {
		if !m.known {
			unknown = append(unknown, m)
		}
	}
	if len(unknown) != 1 || unknown[0].kind != "hotpathological" {
		t.Fatalf("expected exactly the hotpathological lookalike as unknown, got %+v", unknown)
	}
	attached := 0
	for _, m := range ann.all {
		if m.attached {
			attached++
		}
	}
	// The decl/lit/range tests above ran in their own collectAnnots; this
	// one is fresh, so nothing is attached until markerFor is called.
	if attached != 0 {
		t.Fatalf("fresh inventory should have no attachments, got %d", attached)
	}
	if m := ann.markerFor(markOrdered, 33); m == nil || !m.attached {
		t.Fatal("markerFor should attach the ordered waiver above the first range loop")
	}
}
