package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule family names, selectable via -rules. determinism, zeroalloc, and
// structure are the per-function families of the first damqvet; phase,
// taint, and waiver are the whole-program families layered on the call
// graph (callgraph.go). zeroalloc is listed with the interprocedural
// group because its obligation propagation is transitive too.
const (
	ruleDeterminism = "determinism"
	rulePhase       = "phase"
	ruleTaint       = "taint"
	ruleZeroalloc   = "zeroalloc"
	ruleStructure   = "structure"
	ruleWaiver      = "waiver"
)

// AllRules lists every rule family in reporting order.
var AllRules = []string{ruleDeterminism, rulePhase, ruleTaint, ruleZeroalloc, ruleStructure, ruleWaiver}

// Finding is one rule violation. Chain names the call path behind an
// interprocedural finding, annotated root first; nil for findings the
// source line explains on its own.
type Finding struct {
	Pos   token.Position
	Rule  string
	Msg   string
	Chain []string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Checker accumulates packages via Add and runs the enabled rule
// families over the whole program in Finish.
type Checker struct {
	Fset  *token.FileSet
	Rules map[string]bool
	// SimAll treats every package as a simulation package; the fixture
	// tests use it so small testdata modules exercise the determinism and
	// structure rules without replicating the repo layout.
	SimAll bool

	Findings []Finding

	pkgs   []*Package
	annots map[*ast.File]*fileAnnots
}

// NewChecker enables the given rule families (nil or empty = all). The
// waiver audit judges markers by what the other families did with them,
// so it can only run alongside the full set.
func NewChecker(fset *token.FileSet, rules []string) (*Checker, error) {
	c := &Checker{Fset: fset, Rules: map[string]bool{}}
	if len(rules) == 0 {
		rules = AllRules
	}
	for _, r := range rules {
		ok := false
		for _, known := range AllRules {
			if r == known {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (want %s)", r, strings.Join(AllRules, "|"))
		}
		c.Rules[r] = true
	}
	if c.Rules[ruleWaiver] && len(c.Rules) != len(AllRules) {
		return nil, fmt.Errorf("the waiver audit needs every family's attachment records; run it with all rules enabled")
	}
	return c, nil
}

// Add registers one loaded package for the Finish pass.
func (c *Checker) Add(p *Package) {
	c.pkgs = append(c.pkgs, p)
}

// Finish runs every enabled rule family over the added packages. The
// per-package families go first; then the call graph is built once and
// the interprocedural families run over it; the waiver audit reads the
// attachment/suppression records everything else left behind, so it is
// always last.
func (c *Checker) Finish() {
	c.annots = map[*ast.File]*fileAnnots{}
	for _, p := range c.pkgs {
		for _, f := range p.Files {
			c.annots[f] = collectAnnots(c.Fset, f)
		}
	}
	g := buildGraph(c)
	for _, p := range c.pkgs {
		if c.Rules[ruleDeterminism] {
			c.determinism(p)
		}
		if c.Rules[ruleStructure] {
			c.structure(p)
		}
	}
	if c.Rules[ruleZeroalloc] {
		c.zeroallocPass(g)
	}
	if c.Rules[rulePhase] {
		c.phasePass(g)
	}
	if c.Rules[ruleTaint] {
		c.taintPass(g)
	}
	if c.Rules[ruleWaiver] {
		c.auditWaivers()
	}
}

// Sorted returns the findings in (file, line, message) order.
func (c *Checker) Sorted() []Finding {
	out := append([]Finding(nil), c.Findings...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Msg < b.Msg
	})
	return out
}

func (c *Checker) report(pos token.Pos, rule, format string, args ...any) {
	c.Findings = append(c.Findings, Finding{
		Pos:  c.Fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// reportChain records an interprocedural finding with its call chain.
func (c *Checker) reportChain(pos token.Pos, rule string, chain []string, format string, args ...any) {
	c.Findings = append(c.Findings, Finding{
		Pos:   c.Fset.Position(pos),
		Rule:  rule,
		Msg:   fmt.Sprintf(format, args...),
		Chain: append([]string(nil), chain...),
	})
}

// simPkgSuffixes are the simulation/experiment packages the determinism
// and structure families police (ISSUE 3): the packages whose behaviour
// feeds rendered tables and recorded experiment outputs.
var simPkgSuffixes = []string{
	"internal/netsim",
	"internal/comcobb",
	"internal/experiments",
	"internal/arbiter",
	"internal/sw",
	"internal/eventsim",
	"internal/omega",
	"internal/traffic",
}

// isSimPackage reports whether the determinism/structure families apply
// to the package with this import path. internal/markov* matches as a
// family (markov, markov2x2, and future siblings).
func (c *Checker) isSimPackage(path string) bool {
	if c.SimAll {
		return true
	}
	for _, s := range simPkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	if i := strings.Index(path, "internal/markov"); i >= 0 {
		if (i == 0 || path[i-1] == '/') && !strings.Contains(path[i+len("internal/markov"):], "/") {
			return true
		}
	}
	return false
}

// isParallelPackage reports whether path is the sanctioned concurrency
// package (goroutines are allowed only there).
func isParallelPackage(path string) bool {
	return path == "internal/parallel" || strings.HasSuffix(path, "/internal/parallel")
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers.

// rootIdent unwraps selectors, indexes, slices, parens, derefs, and
// address-of down to the base identifier of an lvalue-ish expression
// (s.active[st] -> s, &s.count -> s).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			// e.g. f().x — no stable root.
			return nil
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (use or def).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgNameOf returns the imported package an identifier refers to, or nil.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := objOf(info, id).(*types.PkgName)
	return pn
}

// calleeFromPkg reports whether call invokes function fun of the package
// imported under path pkgPath (exact path or trailing "/pkgPath" suffix,
// so fixtures with a local mini-package match too). An empty fun matches
// any function of the package.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath, fun string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (fun != "" && sel.Sel.Name != fun) {
		return false
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil {
		return false
	}
	imported := pn.Imported().Path()
	return imported == pkgPath || strings.HasSuffix(imported, "/"+pkgPath)
}

// isSinkPointer reports whether t is a pointer to an observability
// sink: a named type whose name contains "Trace", "Metrics",
// "Observer", or "Fault" (the chip's event recorder, the obs-layer
// probe bundles, and the nil-when-disabled fault-injection hooks), or
// any type declared in a package named "obs" (Counter, Gauge,
// Histogram, and future instruments). Method calls on a sink pointer
// must sit inside an `if sink != nil { ... }` guard; the guard body is
// a cold region.
func isSinkPointer(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Name() == "obs" {
		return true
	}
	name := obj.Name()
	return strings.Contains(name, "Trace") ||
		strings.Contains(name, "Metrics") ||
		strings.Contains(name, "Observer") ||
		strings.Contains(name, "Fault")
}

// paramObjects collects the receiver and parameter objects of a function
// into dst.
func paramObjects(info *types.Info, recv *ast.FieldList, ftype *ast.FuncType, dst map[types.Object]bool) {
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if o := info.Defs[name]; o != nil {
					dst[o] = true
				}
			}
		}
	}
	addList(recv)
	if ftype != nil {
		addList(ftype.Params)
	}
}

// addDerivedLocals extends allowed with locals assigned (one or more
// steps removed) from already-allowed roots: `p := in.cur` makes appends
// through p receiver-backed. Runs to a small fixpoint.
func addDerivedLocals(info *types.Info, body *ast.BlockStmt, allowed map[types.Object]bool) {
	for range 4 {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				root := rootIdent(as.Rhs[i])
				if root == nil {
					continue
				}
				if ro := objOf(info, root); ro != nil && allowed[ro] {
					if lo := objOf(info, lid); lo != nil && !allowed[lo] {
						allowed[lo] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// refsAnyOf reports whether expr references at least one object in set.
func refsAnyOf(info *types.Info, expr ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && set[o] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
