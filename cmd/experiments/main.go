// Command experiments reruns the entire evaluation — every table and
// figure of the paper — and prints a consolidated report. With -scale
// full it produces the numbers recorded in EXPERIMENTS.md (several
// minutes); -scale quick is a fast smoke version.
//
// Usage:
//
//	experiments -scale full > report.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"damq"
	"damq/internal/experiments"
	"damq/internal/netsim"
)

// sections tracks report progress so an interrupt can say how far it got.
var sections, sectionsTotal int

func main() {
	scaleName := flag.String("scale", "quick", "simulation scale: quick|full")
	skipMarkov := flag.Bool("skip-markov", false, "skip Table 2 (the slowest exact computation)")
	jsonPath := flag.String("json", "", "also write the machine-readable report to this path")
	reps := flag.Int("reps", 0, "replicate the saturation measurement across this many seeds, run concurrently on -workers goroutines (0 = skip)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	metricsPath := flag.String("metrics", "", "run one instrumented over-subscribed DAMQ simulation, write its metrics snapshot (with time series) to this path, and report the Figure-3-style curve recovered from it")
	flag.Parse()

	sc := experiments.Quick
	if *scaleName == "full" {
		sc = experiments.Full
	} else if *scaleName != "quick" {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	sc.Workers = *workers

	// SIGINT/SIGTERM cancel the remaining experiments cooperatively: the
	// sections already printed stand, and the exit banner reports how far
	// the report got.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sc.Ctx = ctx

	sectionsTotal = 17
	section := func(title string) {
		sections++
		fmt.Println()
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(title)
		fmt.Println(strings.Repeat("=", 78))
	}

	fmt.Printf("DAMQ reproduction report (scale=%s, seed=%d)\n", *scaleName, sc.Seed)

	section("Experiment E1 — Table 1: virtual cut-through in 4 clock cycles")
	t1, err := experiments.Table1()
	orDie(err)
	fmt.Print(t1.Render())

	var t2 *experiments.Table2Result
	if !*skipMarkov {
		section("Experiment E2 — Table 2: Markov analysis, 2x2 discarding switches")
		t2, err = experiments.Table2(nil, sc.Workers)
		orDie(err)
		fmt.Print(t2.Render())
	}

	section("Companion — 4x4 discarding switch, Monte-Carlo (Table 2 at real radix)")
	s4, err := experiments.Switch4x4(sc.Measure*20, sc.Seed, sc.Workers)
	orDie(err)
	fmt.Print(experiments.RenderSwitch4(s4))

	section("Experiment E3 — Table 3: discarding network, uniform traffic")
	t3, err := experiments.Table3(sc)
	orDie(err)
	fmt.Print(t3.Render())

	section("Experiment E4 — Figure 3: latency vs throughput (FIFO vs DAMQ, 4 slots)")
	fig, err := experiments.Figure3([]damq.BufferKind{damq.FIFO, damq.DAMQ}, 4, nil, sc)
	orDie(err)
	fmt.Print(experiments.RenderFigure3(fig))

	section("Experiment E5 — Table 4: blocking network latencies, 4 slots")
	t4, err := experiments.Table4(sc)
	orDie(err)
	fmt.Print(experiments.RenderLatencyRows(
		"Table 4: average latency (clocks) for given load, 4 slots/buffer, blocking, uniform", t4))
	fmt.Println()
	tail, err := experiments.TailLatency(0.45, sc)
	orDie(err)
	fmt.Print(experiments.RenderTail(tail))

	section("Experiment E6 — Table 5: varying slots per buffer (FIFO vs DAMQ)")
	t5, err := experiments.Table5(sc)
	orDie(err)
	fmt.Print(experiments.RenderLatencyRows(
		"Table 5: average latency varying slots/buffer, blocking, uniform", t5))

	section("Experiment E7 — Table 6: 5% hot-spot traffic")
	t6, err := experiments.Table6(sc)
	orDie(err)
	fmt.Print(experiments.RenderTable6(t6))
	fmt.Println()
	ts, err := experiments.TreeSaturation(sc)
	orDie(err)
	fmt.Print(experiments.RenderTreeSat(ts))

	section("Experiment E8 — extension: variable-length packets")
	vl, err := experiments.VarLen(sc)
	orDie(err)
	fmt.Print(experiments.RenderVarLen(vl))

	section("Experiment E9 — extension: asynchronous arrivals (event-driven)")
	as, err := experiments.Async(sc)
	orDie(err)
	fmt.Print(experiments.RenderAsync(as))

	section("Companion — central-pool hogging (§2's rejected design)")
	hog, err := experiments.Hogging(sc)
	orDie(err)
	fmt.Print(experiments.RenderHogging(hog))

	section("Companion — graceful degradation under injected link faults")
	fcv, err := experiments.FaultCurve(nil, nil, sc)
	orDie(err)
	fmt.Print(experiments.RenderFaultCurve(fcv))

	section("Companion — radix sweep: DAMQ/FIFO gap vs switch size")
	rx, err := experiments.RadixSweep(sc)
	orDie(err)
	fmt.Print(experiments.RenderRadix(rx))

	section("Ablation A1 — read connectivity x allocation (DAFC)")
	conn, err := experiments.AblationConnectivity(sc)
	orDie(err)
	fmt.Print(experiments.RenderConnectivity(conn))

	section("Ablation A2 — smart vs dumb arbitration")
	arb, err := experiments.AblationArbitration(sc)
	orDie(err)
	fmt.Print(experiments.RenderArbitration(arb))

	section("Ablation A3 — burstiness (multi-packet messages)")
	burst, err := experiments.AblationBurstiness(sc)
	orDie(err)
	fmt.Print(experiments.RenderBurstiness(burst))

	section("Ablation A4 — Markov solvers and mixing times")
	solver, err := experiments.AblationSolver(time.Now)
	orDie(err)
	fmt.Print(experiments.RenderSolver(solver))

	if *metricsPath != "" {
		section("Companion — Figure 3 from one instrumented run (observer time series)")
		interval := sc.Measure / 100
		if interval < 1 {
			interval = 1
		}
		// Over-subscribed blocking DAMQ run with no warmup: the ramp from
		// empty network to saturation sweeps through every operating point
		// Figure 3 samples one load at a time.
		_, snap, err := experiments.InstrumentedRun(netsim.Config{
			BufferKind:    damq.DAMQ,
			Capacity:      4,
			Policy:        damq.SmartArbitration,
			Protocol:      damq.Blocking,
			Traffic:       netsim.TrafficSpec{Kind: netsim.Uniform, Load: 1.0},
			WarmupCycles:  1,
			MeasureCycles: sc.Warmup + sc.Measure,
			Seed:          sc.Seed,
		}, interval)
		orDie(err)
		curve := experiments.CurveFromIntervals("DAMQ/4 (one run)", 64, snap.Series)
		fmt.Print(experiments.RenderFigure3([]damq.Figure3Series{curve}))
		raw, err := snap.Encode()
		orDie(err)
		orDie(os.WriteFile(*metricsPath, raw, 0o644))
		fmt.Printf("\nmetrics snapshot written to %s\n", *metricsPath)
	}

	if *reps > 0 {
		section(fmt.Sprintf("Replication — saturation throughput across %d seeds", *reps))
		ci, err := experiments.SaturationCI(*reps, sc)
		orDie(err)
		fmt.Print(experiments.RenderCI(ci))
	}

	if *jsonPath != "" {
		rep := &experiments.Report{
			Scale: sc, Table3: t3, Table4: t4, Table5: t5, Table6: t6,
			Table1: t1, VarLen: vl, Async: as, TreeSat: ts,
			Ablate: &experiments.AblationSection{
				Connectivity: conn, Arbitration: arb, Burstiness: burst,
			},
		}
		if !*skipMarkov {
			rep.Table2 = t2
		}
		raw, err := rep.JSON()
		orDie(err)
		orDie(os.WriteFile(*jsonPath, raw, 0o644))
		fmt.Printf("\nJSON report written to %s\n", *jsonPath)
	}
}

func orDie(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "experiments: interrupted at %d/%d sections; the report above covers the completed ones\n",
			sections, sectionsTotal)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
