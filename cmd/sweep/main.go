// Command sweep runs a custom parameter grid over the Omega-network
// simulator and writes CSV, for questions the paper's fixed tables do not
// answer.
//
// Usage:
//
//	sweep -kinds fifo,damq -loads 0.2,0.4,0.6,0.8 -caps 4,8 -out sweep.csv
//	sweep -kinds damq -loads 1.0 -caps 4 -traffic hotspot -hot 0.05
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"damq"
	"damq/internal/arbiter"
	"damq/internal/experiments"
	"damq/internal/netsim"
	"damq/internal/sw"
)

func main() {
	kindsFlag := flag.String("kinds", "fifo,damq", "comma-separated buffer kinds")
	loadsFlag := flag.String("loads", "0.25,0.5,0.75,1.0", "comma-separated offered loads")
	capsFlag := flag.String("caps", "4", "comma-separated buffer capacities (slots)")
	protoFlag := flag.String("protocol", "blocking", "blocking|discarding")
	policyFlag := flag.String("policy", "smart", "smart|dumb")
	trafficFlag := flag.String("traffic", "uniform", "uniform|hotspot|bursty")
	hot := flag.Float64("hot", 0.05, "hot-spot fraction (traffic=hotspot)")
	burst := flag.Float64("burst", 4, "mean message length (traffic=bursty)")
	scaleName := flag.String("scale", "quick", "quick|full")
	out := flag.String("out", "", "CSV output path (default stdout)")
	seed := flag.Uint64("seed", 1988, "PRNG seed")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	flag.Parse()

	grid := experiments.Grid{
		HotFraction: *hot,
		MeanBurst:   *burst,
	}
	for _, name := range strings.Split(*kindsFlag, ",") {
		k, err := damq.ParseBufferKind(strings.TrimSpace(name))
		orDie(err)
		grid.Kinds = append(grid.Kinds, k)
	}
	for _, s := range strings.Split(*loadsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		orDie(err)
		grid.Loads = append(grid.Loads, v)
	}
	for _, s := range strings.Split(*capsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		orDie(err)
		grid.Capacities = append(grid.Capacities, v)
	}
	switch *protoFlag {
	case "blocking":
		grid.Protocol = sw.Blocking
	case "discarding":
		grid.Protocol = sw.Discarding
	default:
		orDie(fmt.Errorf("unknown protocol %q", *protoFlag))
	}
	pol, err := arbiter.ParsePolicy(*policyFlag)
	orDie(err)
	grid.Policy = pol
	switch *trafficFlag {
	case "uniform":
		grid.Traffic = netsim.Uniform
	case "hotspot":
		grid.Traffic = netsim.HotSpot
	case "bursty":
		grid.Traffic = netsim.Bursty
	default:
		orDie(fmt.Errorf("unknown traffic %q", *trafficFlag))
	}

	sc := experiments.Quick
	if *scaleName == "full" {
		sc = experiments.Full
	} else if *scaleName != "quick" {
		orDie(fmt.Errorf("unknown scale %q", *scaleName))
	}
	sc.Seed = *seed
	sc.Workers = *workers

	// SIGINT/SIGTERM cancel the sweep cooperatively: completed points are
	// still flushed as CSV, with a footer noting how far the sweep got.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sc.Ctx = ctx

	total := grid.Points()
	points, err := grid.Run(sc)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		orDie(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		orDie(err)
		defer f.Close()
		w = f
	}
	orDie(experiments.WriteCSV(w, points))
	if *out != "" {
		fmt.Printf("wrote %d rows to %s\n", len(points), *out)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "sweep: interrupted at %d/%d points; CSV holds the completed cells\n",
			len(points), total)
		os.Exit(130)
	}
}

func orDie(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
