package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseFoldsMinima(t *testing.T) {
	out := `
goos: linux
BenchmarkNetworkCycle-8   	  100	 30000 ns/op	  10 B/op	  2 allocs/op
BenchmarkNetworkCycle-8   	  120	 25000 ns/op	  12 B/op	  2 allocs/op
BenchmarkChipNetworkPacket-8	   50	 40000 ns/op	 800 B/op	 32 allocs/op
PASS
`
	entries, err := parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	// Entries are sorted by name.
	chip, cyc := entries[0], entries[1]
	if chip.Name != "BenchmarkChipNetworkPacket" || cyc.Name != "BenchmarkNetworkCycle" {
		t.Fatalf("entry order: %q, %q", chip.Name, cyc.Name)
	}
	if cyc.Runs != 2 || cyc.NsPerOp != 25000 || cyc.BytesPerOp != 10 || cyc.AllocsPerOp != 2 {
		t.Errorf("NetworkCycle folded to %+v, want per-metric minima", cyc)
	}
	if cyc.Iterations != 120 {
		t.Errorf("Iterations = %d, want the fastest run's 120", cyc.Iterations)
	}
	if chip.Runs != 1 || chip.NsPerOp != 40000 {
		t.Errorf("ChipNetworkPacket folded to %+v", chip)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse("BenchmarkX-8  notanumber  5 ns/op"); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse("BenchmarkX-8  10  bad ns/op"); err == nil {
		t.Error("bad metric value accepted")
	}
}

func TestCompareCleanPass(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 4}}
	fresh := []Entry{{Name: "BenchmarkA", NsPerOp: 1100, BytesPerOp: 110, AllocsPerOp: 4}}
	problems, notes := compare(base, fresh, 0.25)
	if len(problems) != 0 {
		t.Errorf("within-tolerance run flagged: %v", problems)
	}
	if len(notes) != 0 {
		t.Errorf("unexpected notes: %v", notes)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 0}}
	fresh := []Entry{{Name: "BenchmarkA", NsPerOp: 1300, BytesPerOp: 0, AllocsPerOp: 0}}
	problems, _ := compare(base, fresh, 0.25)
	if len(problems) != 1 || !strings.Contains(problems[0], "ns/op") {
		t.Errorf("ns/op regression not caught: %v", problems)
	}
}

func TestCompareAllocsExact(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 2}}
	// One extra alloc must fail even though it is within any relative
	// tolerance — allocs/op is machine-independent.
	fresh := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 3}}
	problems, _ := compare(base, fresh, 0.25)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs/op") {
		t.Errorf("allocs/op regression not caught: %v", problems)
	}
}

func TestCompareBytesSlackForTinyBaselines(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1, AllocsPerOp: 0}}
	// 40 B/op over a 1 B/op baseline is within the absolute slack.
	fresh := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 40, AllocsPerOp: 0}}
	problems, _ := compare(base, fresh, 0.25)
	if len(problems) != 0 {
		t.Errorf("tiny-baseline bytes jitter flagged: %v", problems)
	}
	fresh[0].BytesPerOp = 200
	problems, _ = compare(base, fresh, 0.25)
	if len(problems) != 1 || !strings.Contains(problems[0], "B/op") {
		t.Errorf("real B/op regression not caught: %v", problems)
	}
}

func TestStripTimesSkipsNsGateOnly(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkNetworkCycle1024Sharded", NsPerOp: 5000, Iterations: 10, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "BenchmarkNetworkCycle", NsPerOp: 1000, Iterations: 99, BytesPerOp: 0, AllocsPerOp: 0},
	}
	stripTimes(entries, regexp.MustCompile("Sharded"))
	if entries[0].NsPerOp != -1 || entries[0].Iterations != 0 {
		t.Errorf("sharded entry time not stripped: %+v", entries[0])
	}
	if entries[1].NsPerOp != 1000 {
		t.Errorf("unmatched entry modified: %+v", entries[1])
	}
	// A -1 ns/op baseline gates allocations but never wall-clock: a run
	// 100× slower passes, one extra alloc fails.
	fresh := []Entry{{Name: "BenchmarkNetworkCycle1024Sharded", NsPerOp: 500000, BytesPerOp: 0, AllocsPerOp: 0}}
	problems, _ := compare(entries[:1], fresh, 0.25)
	if len(problems) != 0 {
		t.Errorf("time-stripped baseline still gated ns/op: %v", problems)
	}
	fresh[0].AllocsPerOp = 1
	problems, _ = compare(entries[:1], fresh, 0.25)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs/op") {
		t.Errorf("alloc regression not caught under -notime: %v", problems)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := []Entry{{Name: "BenchmarkGone", NsPerOp: 1000}}
	problems, _ := compare(base, nil, 0.25)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Errorf("missing benchmark not caught: %v", problems)
	}
}

func TestCompareImprovementIsNoteNotFailure(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 2000, BytesPerOp: 100, AllocsPerOp: 8}}
	fresh := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 10, AllocsPerOp: 2}}
	problems, notes := compare(base, fresh, 0.25)
	if len(problems) != 0 {
		t.Errorf("improvement flagged as regression: %v", problems)
	}
	if len(notes) == 0 {
		t.Error("large improvement produced no baseline-refresh note")
	}
}
