// Command benchreport runs the repository's benchmarks and writes a
// machine-readable snapshot, so allocation and speed regressions in the
// simulator hot path show up as a diff in a committed JSON file rather
// than an anecdote. BENCH_netsim.json at the repo root is the recorded
// baseline; regenerate it after intentional performance work with:
//
//	go run ./cmd/benchreport -bench 'BenchmarkNetworkCycle|BenchmarkChipNetworkPacket' -out BENCH_netsim.json
//
// Each benchmark is run -count times and the per-metric minimum is
// recorded: minima are the stable statistic under machine noise (ns/op
// can only be inflated by interference, never deflated; B/op and
// allocs/op are deterministic and identical across runs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded metrics.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"` // of the fastest run
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the snapshot file's schema.
type Report struct {
	Package    string  `json:"package"`
	BenchRegex string  `json:"bench_regex"`
	Count      int     `json:"count"`
	GoVersion  string  `json:"go_version"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	pkg := flag.String("pkg", ".", "package to benchmark")
	bench := flag.String("bench", "BenchmarkNetworkCycle|BenchmarkChipNetworkPacket",
		"regexp passed to go test -bench")
	count := flag.Int("count", 3, "runs per benchmark; the minimum of each metric is recorded")
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}

	entries, err := parse(string(raw))
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q in %s", *bench, *pkg))
	}

	rep := Report{
		Package:    *pkg,
		BenchRegex: *bench,
		Count:      *count,
		GoVersion:  goVersion(),
		Benchmarks: entries,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(entries), *out)
}

// parse extracts benchmark result lines of the form
//
//	BenchmarkName-8   1234   56789 ns/op   42 B/op   7 allocs/op
//
// and folds repeated runs of one benchmark into per-metric minima.
func parse(out string) ([]Entry, error) {
	byName := map[string]*Entry{}
	var order []string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so snapshots diff cleanly across
		// machines.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", sc.Text())
		}
		e, ok := byName[name]
		if !ok {
			e = &Entry{Name: name, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
			byName[name] = e
			order = append(order, name)
		}
		e.Runs++
		// Metric fields come in (value, unit) pairs after the iteration
		// count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q", sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				if e.NsPerOp < 0 || v < e.NsPerOp {
					e.NsPerOp = v
					e.Iterations = iters
				}
			case "B/op":
				if e.BytesPerOp < 0 || int64(v) < e.BytesPerOp {
					e.BytesPerOp = int64(v)
				}
			case "allocs/op":
				if e.AllocsPerOp < 0 || int64(v) < e.AllocsPerOp {
					e.AllocsPerOp = int64(v)
				}
			}
		}
	}
	sort.Strings(order)
	entries := make([]Entry, 0, len(order))
	for _, name := range order {
		entries = append(entries, *byName[name])
	}
	return entries, nil
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
