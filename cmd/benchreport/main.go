// Command benchreport runs the repository's benchmarks and writes a
// machine-readable snapshot, so allocation and speed regressions in the
// simulator hot path show up as a diff in a committed JSON file rather
// than an anecdote. BENCH_netsim.json at the repo root is the recorded
// baseline; regenerate it after intentional performance work with:
//
//	go run ./cmd/benchreport -pkg ./... \
//	    -bench 'BenchmarkNetworkCycle|BenchmarkChipNetworkPacket|BenchmarkAsyncEvent|BenchmarkAsyncExtension|BenchmarkDamqvetAnalysis' \
//	    -count 5 -notime 'Sharded|1024|Damqvet' -out BENCH_netsim.json
//
// The regex spans packages (the async event-engine benchmarks live in
// internal/eventsim, the analyzer benchmark in cmd/damqvet), so -pkg is
// ./...; entries fold by benchmark name, which therefore must stay
// unique across the repository.
//
// -notime names benchmarks whose wall-clock is not comparable across
// machines — the multi-worker sharded benchmarks, whose ns/op depends on
// the core count of whatever ran them, and the damqvet analysis pass,
// whose ns/op scales with fixture size. Matching entries record -1 ns/op
// (so -check skips the time gate for them) while their B/op and
// allocs/op stay recorded and gated exactly like everything else.
//
// Each benchmark is run -count times and the per-metric minimum is
// recorded: minima are the stable statistic under machine noise (ns/op
// can only be inflated by interference, never deflated; B/op and
// allocs/op are deterministic and identical across runs).
//
// With -check, benchreport instead re-runs the baseline's benchmarks and
// fails (exit 1) when any of them regressed:
//
//	go run ./cmd/benchreport -check -tol 0.25
//
// allocs/op is an exact gate — it is machine-independent, so any increase
// is a real regression. ns/op and B/op get the -tol relative headroom
// (B/op also a small absolute slack) to absorb machine-to-machine noise.
// A benchmark that improved beyond the tolerance prints a note suggesting
// a baseline refresh but does not fail the check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded metrics.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"` // of the fastest run
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the snapshot file's schema.
type Report struct {
	Package    string  `json:"package"`
	BenchRegex string  `json:"bench_regex"`
	NoTime     string  `json:"notime_regex,omitempty"`
	Count      int     `json:"count"`
	GoVersion  string  `json:"go_version"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	pkg := flag.String("pkg", ".", "package to benchmark")
	bench := flag.String("bench", "BenchmarkNetworkCycle|BenchmarkChipNetworkPacket",
		"regexp passed to go test -bench")
	count := flag.Int("count", 3, "runs per benchmark; the minimum of each metric is recorded")
	notime := flag.String("notime", "", "regexp of benchmarks whose ns/op is machine-dependent (e.g. multi-worker shards); recorded as -1 so -check gates only their allocations")
	out := flag.String("out", "", "output JSON path (default stdout)")
	check := flag.Bool("check", false, "compare a fresh run against -baseline and exit 1 on regression")
	baseline := flag.String("baseline", "BENCH_netsim.json", "baseline snapshot for -check")
	tol := flag.Float64("tol", 0.25, "relative ns/op and B/op headroom for -check (0.25 = +25%)")
	flag.Parse()

	if *check {
		runCheck(*baseline, *tol)
		return
	}

	entries := run(*pkg, *bench, *count)
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q in %s", *bench, *pkg))
	}
	if *notime != "" {
		re, err := regexp.Compile(*notime)
		if err != nil {
			fatal(fmt.Errorf("bad -notime regexp: %w", err))
		}
		stripTimes(entries, re)
	}

	rep := Report{
		Package:    *pkg,
		BenchRegex: *bench,
		NoTime:     *notime,
		Count:      *count,
		GoVersion:  goVersion(),
		Benchmarks: entries,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(entries), *out)
}

// run executes the benchmarks and returns the folded entries.
func run(pkg, bench string, count int) []Entry {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	entries, err := parse(string(raw))
	if err != nil {
		fatal(err)
	}
	return entries
}

// stripTimes erases the wall-clock metric of entries matching the
// -notime regexp: NsPerOp becomes -1, which compare treats as "no time
// gate". Allocation metrics are untouched.
func stripTimes(entries []Entry, re *regexp.Regexp) {
	for i := range entries {
		if re.MatchString(entries[i].Name) {
			entries[i].NsPerOp = -1
			entries[i].Iterations = 0
		}
	}
}

// runCheck re-runs the baseline's benchmarks and fails on regression.
func runCheck(baselinePath string, tol float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("read baseline: %w", err))
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse baseline %s: %w", baselinePath, err))
	}
	if len(base.Benchmarks) == 0 {
		fatal(fmt.Errorf("baseline %s records no benchmarks", baselinePath))
	}
	fresh := run(base.Package, base.BenchRegex, base.Count)
	problems, notes := compare(base.Benchmarks, fresh, tol)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "REGRESSION:", p)
		}
		fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) vs %s (tolerance %.0f%%)\n",
			len(problems), baselinePath, tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchreport: %d benchmarks within tolerance of %s\n", len(base.Benchmarks), baselinePath)
}

// bytesSlack is the absolute B/op allowance on top of the relative
// tolerance, so near-zero baselines (0 or 1 B/op) are not failed by a
// few stray bytes of amortized growth.
const bytesSlack = 64

// compare checks every baseline entry against the fresh run. It returns
// regressions (which fail the check) and notes (improvements worth a
// baseline refresh). allocs/op is exact: it does not vary with machine
// speed, so any increase is a real change in the code's behavior.
func compare(base, fresh []Entry, tol float64) (problems, notes []string) {
	byName := map[string]Entry{}
	for _, e := range fresh {
		byName[e.Name] = e
	}
	for _, b := range base {
		f, ok := byName[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: benchmark missing from fresh run", b.Name))
			continue
		}
		if b.NsPerOp >= 0 {
			limit := b.NsPerOp * (1 + tol)
			switch {
			case f.NsPerOp > limit:
				problems = append(problems, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
					b.Name, f.NsPerOp, b.NsPerOp, tol*100))
			case f.NsPerOp < b.NsPerOp*(1-tol):
				notes = append(notes, fmt.Sprintf("%s: %.0f ns/op is >%.0f%% faster than baseline %.0f ns/op; consider refreshing the baseline",
					b.Name, f.NsPerOp, tol*100, b.NsPerOp))
			}
		}
		if b.AllocsPerOp >= 0 && f.AllocsPerOp > b.AllocsPerOp {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d allocs/op",
				b.Name, f.AllocsPerOp, b.AllocsPerOp))
		}
		if b.AllocsPerOp >= 0 && f.AllocsPerOp < b.AllocsPerOp {
			notes = append(notes, fmt.Sprintf("%s: %d allocs/op improved on baseline %d allocs/op; consider refreshing the baseline",
				b.Name, f.AllocsPerOp, b.AllocsPerOp))
		}
		if b.BytesPerOp >= 0 {
			limit := float64(b.BytesPerOp)*(1+tol) + bytesSlack
			if float64(f.BytesPerOp) > limit {
				problems = append(problems, fmt.Sprintf("%s: %d B/op exceeds baseline %d B/op beyond tolerance",
					b.Name, f.BytesPerOp, b.BytesPerOp))
			}
		}
	}
	return problems, notes
}

// parse extracts benchmark result lines of the form
//
//	BenchmarkName-8   1234   56789 ns/op   42 B/op   7 allocs/op
//
// and folds repeated runs of one benchmark into per-metric minima.
func parse(out string) ([]Entry, error) {
	byName := map[string]*Entry{}
	var order []string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so snapshots diff cleanly across
		// machines.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", sc.Text())
		}
		e, ok := byName[name]
		if !ok {
			e = &Entry{Name: name, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
			byName[name] = e
			order = append(order, name)
		}
		e.Runs++
		// Metric fields come in (value, unit) pairs after the iteration
		// count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q", sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				if e.NsPerOp < 0 || v < e.NsPerOp {
					e.NsPerOp = v
					e.Iterations = iters
				}
			case "B/op":
				if e.BytesPerOp < 0 || int64(v) < e.BytesPerOp {
					e.BytesPerOp = int64(v)
				}
			case "allocs/op":
				if e.AllocsPerOp < 0 || int64(v) < e.AllocsPerOp {
					e.AllocsPerOp = int64(v)
				}
			}
		}
	}
	sort.Strings(order)
	entries := make([]Entry, 0, len(order))
	for _, name := range order {
		entries = append(entries, *byName[name])
	}
	return entries, nil
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
