package damq_test

// One benchmark per table and figure of the paper's evaluation, each
// regenerating (a quick-scale version of) the corresponding artifact.
// `go test -bench=. -benchmem` therefore re-runs the entire evaluation.
// EXPERIMENTS.md records full-scale numbers produced by cmd/experiments.

import (
	"testing"

	"damq"
)

// BenchmarkTable1CutThrough regenerates Table 1: chip-level virtual
// cut-through turn-around measurement across packet lengths.
func BenchmarkTable1CutThrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := damq.ReproduceTable1()
		if err != nil {
			b.Fatal(err)
		}
		for _, ta := range res.TurnAround {
			if ta != 4 {
				b.Fatalf("turn-around %d", ta)
			}
		}
	}
}

// BenchmarkTable2Markov regenerates Table 2: the full exact Markov
// analysis (16 buffer configurations × 8 traffic levels).
func BenchmarkTable2Markov(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.ReproduceTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Discarding regenerates Table 3: discarding Omega
// network, uniform traffic, smart vs dumb arbitration.
func BenchmarkTable3Discarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.ReproduceTable3(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Latency regenerates Table 4: blocking network latencies
// and saturation throughput for all four buffer kinds at 4 slots.
func BenchmarkTable4Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.ReproduceTable4(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Slots regenerates Table 5: FIFO vs DAMQ at 3, 4, and 8
// slots per buffer.
func BenchmarkTable5Slots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.ReproduceTable5(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6HotSpot regenerates Table 6: 5% hot-spot traffic
// tree-saturating every buffer kind at the same throughput.
func BenchmarkTable6HotSpot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.ReproduceTable6(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Curve regenerates Figure 3: the latency-vs-throughput
// sweep for FIFO and DAMQ.
func BenchmarkFigure3Curve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := damq.ReproduceFigure3([]damq.BufferKind{damq.FIFO, damq.DAMQ}, 4, damq.QuickScale)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVarLenExtension regenerates the variable-length extension the
// paper's conclusion motivates.
func BenchmarkVarLenExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.ReproduceVarLen(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConnectivity regenerates the DAFC connectivity
// ablation (A1).
func BenchmarkAblationConnectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.AblateConnectivity(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationArbitration regenerates the smart-vs-dumb arbitration
// ablation (A2).
func BenchmarkAblationArbitration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.AblateArbitration(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBurstiness regenerates the message-traffic ablation
// (A3).
func BenchmarkAblationBurstiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := damq.AblateBurstiness(damq.QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChipNetworkPacket measures the byte-level chip network: one
// 8-byte packet through a 16×16 Omega of ComCoBB chips.
func BenchmarkChipNetworkPacket(b *testing.B) {
	net, err := damq.NewChipOmegaNetwork(damq.ChipOmegaConfig{})
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Send(i%16, (i*7)%16, payload, 0); err != nil {
			b.Fatal(err)
		}
		net.Run(40)
	}
}

// benchNetworkCycle measures the simulator's raw speed: one network cycle
// of an inputs×inputs DAMQ Omega network at the given load.
func benchNetworkCycle(b *testing.B, inputs int, load float64, opts ...damq.Option) {
	sim, err := damq.NewNetwork(damq.NetworkConfig{
		Inputs:     inputs,
		BufferKind: damq.DAMQ,
		Capacity:   4,
		Policy:     damq.SmartArbitration,
		Protocol:   damq.Blocking,
		Traffic:    damq.TrafficSpec{Kind: damq.UniformTraffic, Load: load},
		Seed:       1,
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	// Reach steady state before the timer starts: the early cycles grow
	// the packet pool, source queues, and transfer buffers to their
	// working size, after which stepping is allocation-free. The
	// high-water marks creep for a few thousand cycles (extreme values of
	// the backlog random walk), so the warmup is sized generously; without
	// it the large networks (few timed iterations) smear that one-time
	// growth into their allocs/op.
	for i := 0; i < 3000; i++ {
		sim.Step(false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(true)
	}
}

// BenchmarkNetworkCycle is the dense case: 0.5 load keeps most switches
// occupied, so it measures the arbitration and delivery machinery itself.
func BenchmarkNetworkCycle(b *testing.B) { benchNetworkCycle(b, 64, 0.5) }

// BenchmarkNetworkCycleLowLoad is the sparse case: at 0.2 load most
// switches are empty most cycles, so it measures how well the active-set
// core avoids paying for idle switches.
func BenchmarkNetworkCycleLowLoad(b *testing.B) { benchNetworkCycle(b, 64, 0.2) }

// BenchmarkNetworkCycleObserved is the dense case with an observer
// attached (time series off): it tracks the overhead of the per-cycle
// probes — counter bumps, per-queue depth sampling, stage gauges — which
// must stay allocation-free like the unobserved path.
func BenchmarkNetworkCycleObserved(b *testing.B) {
	benchNetworkCycle(b, 64, 0.5, damq.WithObserver(damq.NewObserver()))
}

// BenchmarkNetworkCycle1024 is the headline scale: a 1024×1024 Omega
// network (5 stages × 256 switches of 4×4), stepped serially.
func BenchmarkNetworkCycle1024(b *testing.B) { benchNetworkCycle(b, 1024, 0.5) }

// BenchmarkNetworkCycle1024Sharded steps the same 1024×1024 network with
// 8 intra-run workers. Its wall-clock depends on the machine's core
// count, so the benchmark gate tracks only its allocation figures; the
// speedup table lives in EXPERIMENTS.md.
func BenchmarkNetworkCycle1024Sharded(b *testing.B) {
	benchNetworkCycle(b, 1024, 0.5, damq.WithWorkers(8))
}
