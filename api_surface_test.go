package damq_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite the exported-API golden file")

// TestExportedAPISurface pins the damq facade's exported API — every
// const, var, type, function, and method signature — against
// testdata/api_surface.golden. The facade is the package's public
// contract: an accidental rename, signature change, or new export shows
// up here as a readable diff instead of a downstream build break.
// Regenerate after intentional API work with:
//
//	go test -run ExportedAPISurface -update-api .
func TestExportedAPISurface(t *testing.T) {
	got := renderAPISurface(t, ".")
	path := filepath.Join("testdata", "api_surface.golden")
	if *updateAPI {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-api to create the golden)", err)
	}
	if got != string(want) {
		t.Errorf("exported API diverges from %s (run with -update-api after intentional changes):\n%s",
			path, diffLines(string(want), got))
	}
}

// renderAPISurface parses the package's non-test files and renders one
// line per exported declaration, sorted, with func bodies and default
// values elided.
func renderAPISurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["damq"]
	if !ok {
		t.Fatalf("package damq not found in %s (got %v)", dir, pkgs)
	}
	var lines []string
	emit := func(node any) {
		var buf bytes.Buffer
		if err := (&printer.Config{Mode: printer.RawFormat}).Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		s := strings.Join(strings.Fields(buf.String()), " ")
		lines = append(lines, s)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				emit(&ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type})
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							emit(&ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{
								&ast.TypeSpec{Name: sp.Name, Assign: sp.Assign, Type: exportedOnly(sp.Type)},
							}})
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() {
								// Names only: values are implementation detail,
								// the golden pins that the identifier exists.
								lines = append(lines, fmt.Sprintf("%s %s", strings.ToLower(d.Tok.String()), name.Name))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok {
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// exportedOnly strips unexported fields from struct types so the golden
// tracks the public shape, not private layout.
func exportedOnly(typ ast.Expr) ast.Expr {
	st, ok := typ.(*ast.StructType)
	if !ok || st.Fields == nil {
		return typ
	}
	var fields []*ast.Field
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 || len(f.Names) == 0 {
			fields = append(fields, &ast.Field{Names: names, Type: f.Type, Tag: f.Tag})
		}
	}
	return &ast.StructType{Fields: &ast.FieldList{List: fields}}
}

// diffLines renders a minimal added/removed line diff for test output.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(lines identical but ordering or whitespace differs)"
	}
	return b.String()
}
