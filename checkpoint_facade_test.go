package damq_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"damq"
)

func checkpointTestConfig() damq.NetworkConfig {
	return damq.NetworkConfig{
		Radix: 4, Inputs: 16, Capacity: 4, ClocksPerCycle: 12,
		WarmupCycles: 30, MeasureCycles: 80, Seed: 11,
		BufferKind: damq.DAMQ,
		Traffic:    damq.TrafficSpec{Kind: damq.UniformTraffic, Load: 0.7},
	}
}

// TestCheckpointRestoreFacade interrupts a run mid-flight via the facade
// (cancel during RunCtxCheckpoint, which drains the cycle and saves a
// final checkpoint), restores at a different worker count, and requires
// the resumed result to match the uninterrupted twin exactly.
func TestCheckpointRestoreFacade(t *testing.T) {
	cfg := checkpointTestConfig()

	ref, err := damq.RunNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sim, err := damq.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	if _, err := sim.RunCtxCheckpoint(ctx, 25, func() error {
		cancel() // first save: interrupt the run; the final save lands below
		buf.Reset()
		return damq.Checkpoint(sim, &buf)
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no checkpoint captured")
	}

	resumed, err := damq.Restore(bytes.NewReader(buf.Bytes()), damq.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.Run(); !reflect.DeepEqual(*got, *ref) {
		t.Errorf("resumed result diverged from uninterrupted run:\n got %+v\nwant %+v", *got, *ref)
	}
}

// TestRestoreRejectsForeignOptions pins the option contract: only
// WithWorkers and WithObserver make sense against a checkpoint.
func TestRestoreRejectsForeignOptions(t *testing.T) {
	sim, err := damq.NewNetwork(checkpointTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := damq.Checkpoint(sim, &buf); err != nil {
		t.Fatal(err)
	}
	sim.Close()

	for name, opt := range map[string]damq.Option{
		"seed":   damq.WithSeed(9),
		"faults": damq.WithFaults(damq.FaultConfig{LinkTransientRate: 0.1}),
		"scale":  damq.WithScale(damq.QuickScale),
	} {
		if _, err := damq.Restore(bytes.NewReader(buf.Bytes()), opt); !errors.Is(err, damq.ErrBadCheckpoint) {
			t.Errorf("Restore with %s option: got %v, want ErrBadCheckpoint", name, err)
		}
	}
}

// TestRestoreCorruptTyped checks the facade surfaces the typed sentinels.
func TestRestoreCorruptTyped(t *testing.T) {
	if _, err := damq.Restore(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, damq.ErrBadCheckpoint) {
		t.Errorf("garbage stream: got %v, want ErrBadCheckpoint", err)
	}
}
